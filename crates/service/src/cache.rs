//! Sharded LRU result cache.
//!
//! Routing is a pure function of (circuit, device, router config,
//! placement seed), and real workloads repeat circuits heavily — so the
//! daemon memoizes finished **response bodies** under an FNV-1a
//! content hash of that identity ([`request_key`]). The cache is split
//! into independently locked shards: a key's shard is a pure function
//! of the key ([`ShardedCache::shard_of`]), so two requests contend
//! only when they hash to the same shard. Each shard is a classic
//! doubly-linked LRU list over a `HashMap` index with per-shard
//! hit/miss/eviction counters.
//!
//! A capacity of `0` disables caching entirely (every probe is a miss,
//! inserts are dropped) — the daemon's `--cache-capacity 0` mode, which
//! the determinism gate diffs against a cache-enabled daemon.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The FNV-1a offset basis (shared by the key hash and the loadgen
/// stream checksum).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a hash state.
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The full identity of a route request — its parts joined with `\0`
/// (which no part can contain: QASM and names are control-free).
/// Stored alongside each cache entry and compared on every probe, so
/// a 64-bit hash collision degrades to a cache miss instead of serving
/// another request's result.
pub fn key_material(parts: &[&str]) -> String {
    parts.join("\0")
}

/// FNV-1a over [`key_material`] — the cache key for a route request:
/// canonical circuit text, device name, router label, seed.
///
/// # Examples
///
/// ```
/// use codar_service::cache::request_key;
///
/// let a = request_key(&["qreg q[2];", "q20", "codar", "0"]);
/// let b = request_key(&["qreg q[2];", "q20", "codar", "0"]);
/// let c = request_key(&["qreg q[2];", "q20", "sabre", "0"]);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
pub fn request_key(parts: &[&str]) -> u64 {
    fnv1a_extend(FNV_OFFSET, key_material(parts).as_bytes())
}

/// Aggregate counters across all shards (a point-in-time snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total capacity in entries (sum over shards).
    pub capacity: usize,
    /// Number of shards.
    pub shards: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Probes that found their key.
    pub hits: u64,
    /// Probes that did not.
    pub misses: u64,
    /// Entries displaced by LRU eviction.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over probes, `0.0` when nothing was probed yet.
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    key: u64,
    /// Full request identity ([`key_material`]); compared on probe so
    /// FNV collisions cannot serve a foreign result.
    material: String,
    /// Shared so a hit is a refcount bump inside the shard lock, not a
    /// deep copy of a multi-KB response body.
    value: Arc<str>,
    prev: usize,
    next: usize,
}

/// One independently locked LRU shard.
#[derive(Debug, Default)]
struct Shard {
    index: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Most recently used node, `NIL` when empty.
    head: usize,
    /// Least recently used node, `NIL` when empty.
    tail: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            head: NIL,
            tail: NIL,
            ..Shard::default()
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn get(&mut self, key: u64, material: &str) -> Option<Arc<str>> {
        match self.index.get(&key).copied() {
            Some(slot) if self.nodes[slot].material == material => {
                self.hits += 1;
                self.unlink(slot);
                self.push_front(slot);
                Some(Arc::clone(&self.nodes[slot].value))
            }
            // A hash collision (same 64-bit key, different request)
            // is a miss: routing fresh is always correct.
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: u64, material: String, value: Arc<str>, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if let Some(&slot) = self.index.get(&key) {
            // Same request: concurrent fill, refresh recency and keep
            // the (identical, routing is deterministic) value. A
            // colliding request overwrites — last writer wins; probes
            // compare materials, so correctness is unaffected either
            // way.
            self.nodes[slot].material = material;
            self.nodes[slot].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        if self.index.len() >= capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            self.index.remove(&self.nodes[victim].key);
            self.free.push(victim);
            self.evictions += 1;
        }
        let node = Node {
            key,
            material,
            value,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.push_front(slot);
    }

    /// Keys from most to least recently used (tests only).
    #[cfg(test)]
    fn lru_order(&self) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut slot = self.head;
        while slot != NIL {
            keys.push(self.nodes[slot].key);
            slot = self.nodes[slot].next;
        }
        keys
    }
}

/// The sharded LRU cache (see the module docs).
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl ShardedCache {
    /// A cache of roughly `capacity` entries split over `shards`
    /// independently locked shards (each shard holds
    /// `ceil(capacity / shards)` entries, so the effective total is
    /// rounded up to a multiple of the shard count). `capacity == 0`
    /// disables caching; `shards` is clamped to at least 1.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity,
        }
    }

    /// The shard a key lives in — a pure function of `(key, shard
    /// count)`, so placement is stable across calls and instances.
    pub fn shard_of(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    /// Probes the cache, updating recency and the hit/miss counters.
    /// `material` is the probe's [`key_material`]; a key whose stored
    /// material differs (a 64-bit collision) reads as a miss.
    pub fn get(&self, key: u64, material: &str) -> Option<Arc<str>> {
        let shard = &self.shards[self.shard_of(key)];
        shard
            .lock()
            .expect("cache shard poisoned")
            .get(key, material)
    }

    /// Inserts a finished response body under its full identity
    /// (no-op when capacity is 0).
    pub fn insert(&self, key: u64, material: String, value: Arc<str>) {
        let shard = &self.shards[self.shard_of(key)];
        shard.lock().expect("cache shard poisoned").insert(
            key,
            material,
            value,
            self.per_shard_capacity,
        );
    }

    /// Whether inserts are accepted at all.
    pub fn enabled(&self) -> bool {
        self.per_shard_capacity > 0
    }

    /// Point-in-time counters summed over the shards.
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            capacity: self.per_shard_capacity * self.shards.len(),
            shards: self.shards.len(),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            stats.entries += shard.index.len();
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.evictions += shard.evictions;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_inserted_value() {
        let cache = ShardedCache::new(8, 2);
        assert_eq!(cache.get(1, "m1"), None);
        cache.insert(1, "m1".into(), "one".into());
        assert_eq!(cache.get(1, "m1").as_deref(), Some("one"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn colliding_material_reads_as_miss_never_as_foreign_hit() {
        // Same 64-bit key, different request identity: the probe must
        // miss rather than serve another request's result.
        let cache = ShardedCache::new(8, 2);
        cache.insert(1, "request A".into(), "result A".into());
        assert_eq!(cache.get(1, "request B"), None);
        // The collision overwrite keeps probes honest both ways.
        cache.insert(1, "request B".into(), "result B".into());
        assert_eq!(cache.get(1, "request A"), None);
        assert_eq!(cache.get(1, "request B").as_deref(), Some("result B"));
    }

    #[test]
    fn lru_eviction_order_is_least_recently_used_first() {
        // Single shard so the whole capacity is one LRU list.
        let mut shard = Shard::new();
        for key in 0..4 {
            shard.insert(key, key.to_string(), key.to_string().into(), 4);
        }
        assert_eq!(shard.lru_order(), vec![3, 2, 1, 0]);
        // Touch 0 and 2: recency becomes [2, 0, 3, 1].
        shard.get(0, "0");
        shard.get(2, "2");
        assert_eq!(shard.lru_order(), vec![2, 0, 3, 1]);
        // Inserting two more evicts 1 then 3 (the two LRU tails).
        shard.insert(4, "4".into(), Arc::from("4"), 4);
        assert_eq!(shard.lru_order(), vec![4, 2, 0, 3]);
        shard.insert(5, "5".into(), Arc::from("5"), 4);
        assert_eq!(shard.lru_order(), vec![5, 4, 2, 0]);
        assert_eq!(shard.get(1, "1"), None);
        assert_eq!(shard.get(3, "3"), None);
        assert_eq!(shard.evictions, 2);
        // The survivors are all still retrievable.
        for key in [0, 2, 4, 5] {
            assert_eq!(
                shard.get(key, &key.to_string()).as_deref(),
                Some(key.to_string().as_str()),
                "key {key}"
            );
        }
    }

    #[test]
    fn reinserting_existing_key_refreshes_recency_without_eviction() {
        let mut shard = Shard::new();
        for key in 0..3 {
            shard.insert(key, key.to_string(), Arc::from("v"), 3);
        }
        shard.insert(0, "0".into(), Arc::from("v2"), 3);
        assert_eq!(shard.lru_order(), vec![0, 2, 1]);
        assert_eq!(shard.evictions, 0);
        assert_eq!(shard.get(0, "0").as_deref(), Some("v2"));
    }

    #[test]
    fn shard_selection_is_stable() {
        let cache_a = ShardedCache::new(64, 8);
        let cache_b = ShardedCache::new(64, 8);
        for key in (0..1000u64).map(|i| request_key(&[&i.to_string()])) {
            let shard = cache_a.shard_of(key);
            assert_eq!(shard, cache_a.shard_of(key), "stable across calls");
            assert_eq!(shard, cache_b.shard_of(key), "stable across instances");
            assert!(shard < 8);
        }
        // Keys spread over all shards (FNV mixes low bits well).
        let mut seen = [false; 8];
        for i in 0..100u64 {
            seen[cache_a.shard_of(request_key(&[&i.to_string()]))] = true;
        }
        assert!(seen.iter().all(|&s| s), "some shard never selected");
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let cache = ShardedCache::new(0, 4);
        assert!(!cache.enabled());
        cache.insert(1, "m".into(), "one".into());
        assert_eq!(cache.get(1, "m"), None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.capacity, 0);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn capacity_rounds_up_to_shard_multiple() {
        let cache = ShardedCache::new(10, 4);
        assert_eq!(cache.stats().capacity, 12); // ceil(10/4) = 3 per shard
        let single = ShardedCache::new(10, 1);
        assert_eq!(single.stats().capacity, 10);
    }

    #[test]
    fn request_key_separator_prevents_concatenation_collisions() {
        assert_ne!(request_key(&["ab", "c"]), request_key(&["a", "bc"]));
        assert_ne!(request_key(&["ab"]), request_key(&["ab", ""]));
    }

    #[test]
    fn evictions_count_per_shard_and_entries_track_capacity() {
        let cache = ShardedCache::new(4, 4); // 1 entry per shard
        for key in 0..100u64 {
            cache.insert(key, key.to_string(), Arc::from("x"));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 4);
        assert_eq!(stats.evictions, 100 - 4);
    }
}
