//! Minimal JSON support for the wire protocol.
//!
//! The workspace has no crates.io access, so the service carries its
//! own JSON layer: a strict recursive-descent parser into [`Json`]
//! (objects, arrays, strings with full escape handling, numbers,
//! booleans, `null`) and the [`escape`] helper used when emitting
//! responses. The parser is for *requests* only — responses are built
//! with deterministic hand-formatted field order so byte-level golden
//! tests stay stable.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

/// Maximum container nesting the parser accepts. Recursion depth is
/// bounded by input depth, so an unbounded parser could be driven to a
/// stack overflow (a process abort) by one hostile request line.
const MAX_DEPTH: usize = 128;

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    /// Bounded to 2^53 so every accepted value is exactly
    /// representable in the `f64` the number was parsed into — larger
    /// inputs would silently round and echo back a *different* id.
    pub fn as_u64(&self) -> Option<u64> {
        const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < EXACT => Some(*x as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

/// Parses a number with the exact JSON grammar:
/// `-? (0 | [1-9][0-9]*) (. [0-9]+)? ([eE] [+-]? [0-9]+)?`.
/// Forms Rust's `f64` parser would accept but JSON does not (`+5`,
/// `.5`, `1.`, `01`, `1e`) are rejected here.
fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    let err = |what: &str| format!("{what} in number at byte {start}");
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => {
            *pos += 1;
            if matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                return Err(err("leading zero"));
            }
        }
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err(err("missing integer part")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(err("missing fraction digits"));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return Err(err("missing exponent digits"));
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let unit = parse_hex4(bytes, pos)?;
                        // Combine surrogate pairs; lone or mispaired
                        // surrogates degrade to U+FFFD (requests are
                        // not trusted input). The second escape is
                        // consumed only when it really is a low
                        // surrogate, so `\ud800A` yields
                        // "\u{FFFD}A" rather than swallowing the `A`.
                        let c = if (0xD800..0xDC00).contains(&unit) {
                            match peek_low_surrogate(bytes, *pos) {
                                Some(low) => {
                                    *pos += 6; // the `\uXXXX` just peeked
                                    let combined = 0x10000
                                        + ((unit as u32 - 0xD800) << 10)
                                        + (low as u32 - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                }
                                None => '\u{FFFD}',
                            }
                        } else {
                            char::from_u32(unit as u32).unwrap_or('\u{FFFD}')
                        };
                        out.push(c);
                        continue; // parse_hex4 already advanced pos
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(format!("unescaped control byte at {pos}", pos = *pos));
            }
            Some(_) => {
                // Copy the contiguous run up to the next quote, escape,
                // or control byte in one shot (re-validating the whole
                // remaining input per character would be O(n²)). Run
                // boundaries are ASCII bytes, so they always fall on
                // UTF-8 char boundaries of the original &str input.
                let run_start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' || b < 0x20 {
                        break;
                    }
                    *pos += 1;
                }
                let run =
                    std::str::from_utf8(&bytes[run_start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(run);
            }
        }
    }
}

/// Reads the `\uXXXX` escape at `pos` without advancing, returning its
/// value only when it is a low surrogate — the only unit that may
/// legally follow a high surrogate. Anything else (no escape, a
/// malformed escape, a non-surrogate, another high surrogate) returns
/// `None` and is left for the main string loop to handle on its own.
fn peek_low_surrogate(bytes: &[u8], pos: usize) -> Option<u16> {
    if bytes.get(pos) != Some(&b'\\') || bytes.get(pos + 1) != Some(&b'u') {
        return None;
    }
    let mut p = pos + 2;
    let v = parse_hex4(bytes, &mut p).ok()?;
    (0xDC00..=0xDFFF).contains(&v).then_some(v)
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u16, String> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err("truncated \\u escape".into());
    }
    let text = std::str::from_utf8(&bytes[*pos..end]).map_err(|e| e.to_string())?;
    let v = u16::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}`"))?;
    *pos = end;
    Ok(v)
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

/// Renders `s` as a JSON string literal (quotes included) — the
/// engine's summary escaping, re-exported so NDJSON payloads
/// containing QASM (newlines, quotes) stay one line each and cannot
/// drift from the summaries' rules.
pub fn escape(s: &str) -> String {
    codar_engine::report::json_string(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "c"}, null], "d": true}"#).unwrap();
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(true));
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[1].get("b").and_then(Json::as_str), Some("c"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        for original in [
            "line1\nline2\t\"quoted\" back\\slash",
            "unicode: π ψ 😀",
            "control:\u{0001}\u{001f}",
            "",
        ] {
            let literal = escape(original);
            let parsed = Json::parse(&literal).unwrap();
            assert_eq!(parsed.as_str(), Some(original), "via {literal}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9""#).unwrap(),
            Json::Str("Aé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        // Lone surrogate degrades to the replacement character.
        assert_eq!(
            Json::parse(r#""\ud83d!""#).unwrap(),
            Json::Str("\u{FFFD}!".into())
        );
    }

    #[test]
    fn mispaired_surrogates_degrade_without_panicking() {
        // High surrogate followed by a non-surrogate escape: the
        // second escape must survive as its own character (this input
        // overflowed u32 arithmetic and panicked debug builds before
        // the pairing check was added).
        assert_eq!(
            Json::parse(r#""\ud800\u0041""#).unwrap(),
            Json::Str("\u{FFFD}A".into())
        );
        // Same with a literal (non-escape) character after the high
        // surrogate.
        assert_eq!(
            Json::parse(r#""\ud800A""#).unwrap(),
            Json::Str("\u{FFFD}A".into())
        );
        // High surrogate followed by another high surrogate that goes
        // on to pair correctly with the escape after it.
        assert_eq!(
            Json::parse(r#""\ud800\ud83d\ude00""#).unwrap(),
            Json::Str("\u{FFFD}😀".into())
        );
        // High surrogate at end of string, and a lone low surrogate.
        assert_eq!(
            Json::parse(r#""\ud800""#).unwrap(),
            Json::Str("\u{FFFD}".into())
        );
        assert_eq!(
            Json::parse(r#""\udc00x""#).unwrap(),
            Json::Str("\u{FFFD}x".into())
        );
        // A malformed second escape is still a parse error, not a
        // silent replacement.
        assert!(Json::parse(r#""\ud800\uZZZZ""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "[1,",
            "\"open",
            "{'a':1}",
            "tru",
            "1 2",
            "{\"a\":1,}",
            "\"\u{0001}\"",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn numeric_accessors_validate() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("7.5").unwrap().as_f64(), Some(7.5));
        assert_eq!(Json::parse("\"7\"").unwrap().as_u64(), None);
        // Values that cannot round-trip exactly through f64 are
        // rejected rather than silently rounded.
        assert_eq!(
            Json::parse("9007199254740991").unwrap().as_u64(),
            Some((1 << 53) - 1)
        );
        assert_eq!(Json::parse("9007199254740993").unwrap().as_u64(), None);
        assert_eq!(Json::parse("18446744073709551616").unwrap().as_u64(), None);
    }

    #[test]
    fn hostile_nesting_errors_instead_of_overflowing_the_stack() {
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).expect_err("must not abort");
        assert!(err.contains("nesting"), "{err}");
        // Depths inside the cap still parse.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn get_on_non_objects_is_none() {
        assert_eq!(Json::parse("[1]").unwrap().get("a"), None);
        assert_eq!(Json::parse("1").unwrap().get("a"), None);
    }
}
