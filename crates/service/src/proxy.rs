//! The sharded front tier: `codar-proxy`.
//!
//! A [`Proxy`] is a *stateless* NDJSON front end over N backend
//! `coded` instances. Route requests are placed by **rendezvous (HRW)
//! hashing** of the canonical route identity — the same circuit
//! canonicalization the backends key their result caches on — so
//! identical requests always land on the same shard (cache locality
//! for free), and when a shard dies only *its* keyspace moves to the
//! survivors; everyone else's cache stays hot.
//!
//! Per request the proxy runs a bounded retry loop: pick the best
//! alive shard, forward with connect/read timeouts, and on any
//! transport failure (connect refused, read timeout, EOF, torn frame)
//! or a `draining` refusal, mark the shard down, back off with capped
//! exponential backoff + deterministic seeded jitter, and re-pick
//! among the survivors. The health flags are only a fast path: when
//! the whole fleet looks dead the loop keeps reconnecting
//! optimistically (a connect attempt is itself a probe), so shards
//! coming back under a supervisor rejoin mid-request instead of after
//! the next probe sweep. Only when the budget is spent does the client
//! get a well-formed `overloaded` line — never silence, never a torn
//! frame. A background prober revives shards (and demotes draining
//! ones) via the `health` verb between requests.
//!
//! The proxy answers `stats`/`metrics`/`health` itself (its replies
//! carry `"proxy":true` so clients and checkers can tell the tiers
//! apart), broadcasts `calibration set` and `shutdown` to every
//! backend, and forwards everything else — including malformed lines,
//! whose error replies the backends own, keeping the tier transparent:
//! for the same request stream, a 1-shard and an N-shard deployment
//! produce byte-identical route-response multisets (the determinism
//! gate in `tests/proxy.rs` and CI).

use crate::cache::{fnv1a_extend, key_material, FNV_OFFSET};
use crate::json::Json;
use crate::metrics::{Histogram, ServiceMetrics};
use crate::protocol::{
    attach_id, attach_trace, overloaded_body, shutdown_body, CalAction, Request,
    TRACE_REPLY_DEFAULT, TRACE_REPLY_MAX,
};
use crate::server::{SharedWriter, DEFAULT_CAL_ALPHA};
use crate::trace::{phase_sample, TraceCtx, TraceRecorder};
use codar_circuit::decompose::decompose_three_qubit_gates;
use codar_circuit::from_qasm::{circuit_from_flat, circuit_to_qasm};
use codar_engine::RouterKind;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Front-tier configuration.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Backend `coded` addresses (`host:port`), shard order. All
    /// backends must run the same seed/config for replies to be
    /// byte-identical across shard counts.
    pub backends: Vec<String>,
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Per-attempt reply read timeout (`set_read_timeout`).
    pub read_timeout: Duration,
    /// Retry budget per request *after* the first attempt.
    pub retries: u32,
    /// Backoff before retry k is `base * 2^(k-1)`, capped…
    pub backoff_base: Duration,
    /// …at this, then jittered into `[half, full]` deterministically.
    pub backoff_cap: Duration,
    /// Health-probe cadence of the background prober (it sleeps one
    /// interval *before* the first sweep, so tests can pick an hour to
    /// opt out of probe traffic entirely).
    pub probe_interval: Duration,
    /// Seed of the per-connection jitter streams.
    pub seed: u64,
    /// NDJSON trace log path (`codar-proxy --trace-log`). When set,
    /// untraced route lines get a proxy-minted id (`p-N`) *injected*
    /// into the forwarded bytes, so each shard's span tree joins the
    /// proxy's in the merged waterfall (`codar-trace --merge`).
    pub trace_log: Option<String>,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            backends: Vec::new(),
            connect_timeout: Duration::from_millis(1000),
            read_timeout: Duration::from_millis(5000),
            retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            probe_interval: Duration::from_millis(250),
            seed: 0,
            trace_log: None,
        }
    }
}

/// The proxy's own counters (its `stats`/`metrics` replies report
/// these, flagged `"proxy":true`; backend counters stay on the
/// backends).
#[derive(Debug, Default)]
pub struct ProxyMetrics {
    /// Client request lines received.
    pub requests: AtomicU64,
    /// Requests answered by a backend reply.
    pub forwarded: AtomicU64,
    /// Failed attempts (transport failure or draining refusal).
    pub retries: AtomicU64,
    /// Retries that moved to a different shard.
    pub failovers: AtomicU64,
    /// Requests answered `overloaded` because no shard could.
    pub overloaded: AtomicU64,
    /// End-to-end forwarded-request latency (first write → final
    /// reply, retries included), log2 buckets. Served by the proxy's
    /// extended `{"type":"metrics","hist":true}` body.
    pub hist_forward: Histogram,
}

struct ProxyInner {
    config: ProxyConfig,
    /// Per-backend health, index-aligned with `config.backends`.
    /// Optimistic at start; demoted by call failures and the prober,
    /// revived by the prober.
    alive: Vec<AtomicBool>,
    /// Per-backend forwarded-reply counters.
    served: Vec<AtomicU64>,
    metrics: ProxyMetrics,
    shutdown: AtomicBool,
    conn_seq: AtomicU64,
    /// Span rings + optional NDJSON sink; mints `p-N` ids (a distinct
    /// namespace from the daemons' `t-N`) exactly when the config
    /// carries a `trace_log`.
    recorder: TraceRecorder,
    prober: Mutex<Option<JoinHandle<()>>>,
}

impl Drop for ProxyInner {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.prober.lock().expect("prober handle").take() {
            let _ = handle.join();
        }
    }
}

/// The running front tier (cheaply cloneable; see the module docs).
#[derive(Clone)]
pub struct Proxy {
    inner: Arc<ProxyInner>,
}

/// One client connection's pooled backend connections plus its
/// deterministic jitter stream. Created per serve thread by
/// [`Proxy::connections`]; never shared.
pub struct BackendConns {
    conns: Vec<Option<NdConn>>,
    rng: StdRng,
}

struct NdConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// The rendezvous placement key of one request line: route requests
/// hash their *canonical* identity (parsed, ≤2-qubit-decomposed,
/// re-serialized circuit + lowercased device + router + exact alpha
/// bits + sim backend — the request-dependent part of the backends'
/// cache key), so formatting differences cannot split a circuit across
/// shards. Unparseable circuits and non-route lines hash raw bytes —
/// any shard answers those identically.
pub fn shard_key(line: &str) -> u64 {
    match Request::parse_line(line) {
        Ok(Request::Route {
            device,
            router,
            alpha,
            sim,
            qasm,
            ..
        }) => {
            let canonical = codar_qasm::parse_and_flatten(&qasm)
                .ok()
                .map(|flat| decompose_three_qubit_gates(&circuit_from_flat(&flat)))
                .and_then(|circuit| circuit_to_qasm(&circuit).ok())
                .unwrap_or(qasm);
            let alpha_text = if router == RouterKind::CodarCal {
                format!("{:016x}", alpha.unwrap_or(DEFAULT_CAL_ALPHA).to_bits())
            } else {
                String::new()
            };
            let device = device.to_ascii_lowercase();
            let mut parts: Vec<&str> = vec![&canonical, &device, router.name(), &alpha_text];
            if let Some(backend) = sim {
                parts.push(backend.name());
            }
            fnv1a_extend(FNV_OFFSET, key_material(&parts).as_bytes())
        }
        _ => fnv1a_extend(FNV_OFFSET, line.as_bytes()),
    }
}

/// The HRW weight of `backend` for `key`: each backend scores the key
/// independently, the highest alive score wins. Removing a backend
/// only re-homes the keys it was winning; every other key keeps its
/// shard (and that shard's warm cache).
pub fn hrw_weight(key: u64, backend: &str) -> u64 {
    fnv1a_extend(
        fnv1a_extend(FNV_OFFSET, &key.to_le_bytes()),
        backend.as_bytes(),
    )
}

/// Whether a backend reply is a `draining` refusal — the backend is
/// shutting down and the request must fail over to a live shard.
fn reply_is_draining(reply: &str) -> bool {
    reply.contains("\"error\":\"draining")
}

impl Proxy {
    /// Starts the tier: validates the backend list and spawns the
    /// health prober. Backends are assumed alive until proven dead
    /// (first contact demotes liars fast).
    ///
    /// # Errors
    ///
    /// Returns a message when `config.backends` is empty or the trace
    /// log cannot be created.
    pub fn start(config: ProxyConfig) -> Result<Proxy, String> {
        if config.backends.is_empty() {
            return Err("codar-proxy needs at least one backend".to_string());
        }
        let recorder = match &config.trace_log {
            Some(path) => TraceRecorder::with_sink_prefix(path, "p")
                .map_err(|e| format!("cannot create trace log `{path}`: {e}"))?,
            None => TraceRecorder::new(),
        };
        let n = config.backends.len();
        let inner = Arc::new(ProxyInner {
            alive: (0..n).map(|_| AtomicBool::new(true)).collect(),
            served: (0..n).map(|_| AtomicU64::new(0)).collect(),
            metrics: ProxyMetrics::default(),
            shutdown: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            recorder,
            prober: Mutex::new(None),
            config,
        });
        let prober = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("codar-proxy-prober".to_string())
                .spawn(move || prober_loop(&inner))
                .expect("spawn prober thread")
        };
        *inner.prober.lock().expect("prober handle") = Some(prober);
        Ok(Proxy { inner })
    }

    /// Whether a `shutdown` request has been served.
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// The configuration the tier was started with.
    pub fn config(&self) -> &ProxyConfig {
        &self.inner.config
    }

    /// Fresh per-connection backend state (pooled connections + the
    /// jitter stream, seeded from the config seed and a connection
    /// sequence number).
    pub fn connections(&self) -> BackendConns {
        let seq = self.inner.conn_seq.fetch_add(1, Ordering::SeqCst);
        BackendConns {
            conns: (0..self.inner.config.backends.len())
                .map(|_| None)
                .collect(),
            rng: StdRng::seed_from_u64(self.inner.config.seed ^ seq.wrapping_mul(0x9E37_79B9)),
        }
    }

    /// Marks backend `i` (index into the config's backend list) alive
    /// or dead. Public so harnesses can stage health states; normal
    /// operation is call failures demoting and the prober reviving.
    pub fn set_alive(&self, i: usize, alive: bool) {
        self.inner.alive[i].store(alive, Ordering::SeqCst);
    }

    /// Whether backend `i` is currently considered alive.
    pub fn is_alive(&self, i: usize) -> bool {
        self.inner.alive[i].load(Ordering::SeqCst)
    }

    /// The index of the backend that would serve this line right now:
    /// HRW over currently-alive backends, falling back to the full
    /// list when the whole fleet looks dead (the retry loop reconnects
    /// optimistically rather than blackholing — a connect attempt is
    /// itself a probe). What [`Proxy::handle_line`] uses for its first attempt —
    /// also how tests aim a fault plan at the shard a request will hit.
    pub fn preferred_backend(&self, line: &str) -> Option<usize> {
        self.pick(
            shard_key(line),
            &vec![false; self.inner.config.backends.len()],
        )
    }

    fn pick(&self, key: u64, banned: &[bool]) -> Option<usize> {
        self.pick_where(key, |i| {
            !banned[i] && self.inner.alive[i].load(Ordering::SeqCst)
        })
        // The alive flags are a fast path, not ground truth: when the
        // whole fleet *looks* dead (e.g. every shard crashed and is
        // being supervisor-restarted), retry optimistically instead of
        // blackholing until the next probe sweep — a connect attempt is
        // itself a probe, and a restarted shard rejoins immediately.
        .or_else(|| self.pick_where(key, |i| !banned[i]))
    }

    fn pick_where(&self, key: u64, eligible: impl Fn(usize) -> bool) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (i, addr) in self.inner.config.backends.iter().enumerate() {
            if !eligible(i) {
                continue;
            }
            let weight = hrw_weight(key, addr);
            if best.map_or(true, |(w, _)| weight > w) {
                best = Some((weight, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Handles one client line and always returns exactly one
    /// well-formed response line (the tier's core contract).
    ///
    /// Tracing: locally-answered verbs echo any client trace id;
    /// forwarded lines carry theirs through to the backend (which
    /// echoes it). With a trace log attached, untraced route lines
    /// additionally get a proxy-minted `p-N` id *injected* into the
    /// forwarded bytes, so the shard's span tree records under the
    /// same id and `codar-trace --merge` can join the two tiers.
    pub fn handle_line(&self, line: &str, conns: &mut BackendConns) -> String {
        let t0 = Instant::now();
        let metrics = &self.inner.metrics;
        ServiceMetrics::bump(&metrics.requests);
        let parsed = Request::parse_envelope(line);
        // Validated during the one parse; also recovered from
        // rejected lines, mirroring the backends.
        let client_trace = match &parsed {
            Ok(envelope) => envelope.trace.clone(),
            Err(rejection) => rejection.trace.clone(),
        };
        match parsed.as_ref().map(|envelope| &envelope.request) {
            Ok(Request::Stats { id }) => {
                return attach_id(
                    *id,
                    &attach_trace(client_trace.as_deref(), &self.stats_body()),
                )
            }
            Ok(Request::Metrics { id, hist }) => {
                let body = if *hist {
                    self.metrics_body_hist()
                } else {
                    self.metrics_body()
                };
                return attach_id(*id, &attach_trace(client_trace.as_deref(), &body));
            }
            Ok(Request::Health { id }) => {
                return attach_id(
                    *id,
                    &attach_trace(client_trace.as_deref(), &self.health_body()),
                )
            }
            Ok(Request::Trace { id, n }) => {
                return attach_id(
                    *id,
                    &attach_trace(client_trace.as_deref(), &self.trace_body(*n)),
                )
            }
            Ok(Request::Shutdown { id }) => {
                // Best-effort broadcast so the whole deployment drains,
                // then the proxy acks and stops serving itself.
                let framed = frame(line);
                for i in 0..self.inner.config.backends.len() {
                    if self.call(i, conns, &framed).is_err() {
                        conns.conns[i] = None;
                    }
                }
                self.inner.shutdown.store(true, Ordering::SeqCst);
                return attach_id(
                    *id,
                    &attach_trace(client_trace.as_deref(), &shutdown_body()),
                );
            }
            Ok(Request::Calibration {
                action: CalAction::Set,
                ..
            }) => return self.broadcast(line, conns, client_trace.as_deref()),
            // Route, calibration get, devices — and parse rejections,
            // which the backends answer so the tier adds no error
            // shapes of its own.
            _ => {}
        }
        let is_route = matches!(
            parsed.as_ref().map(|envelope| &envelope.request),
            Ok(Request::Route { .. })
        );
        let verb = match &parsed {
            Ok(envelope) => envelope.request.verb(),
            Err(_) => "opaque",
        };
        // Span recording is armed by `--trace-log`, exactly like the
        // backend daemons: an untraced proxy neither mints nor records,
        // so its behavior (and the bytes it forwards) are unchanged.
        let minted = if client_trace.is_none() && is_route {
            self.inner.recorder.mint()
        } else {
            None
        };
        let injected = minted.is_some();
        let trace_id = if self.inner.recorder.minting() {
            client_trace.clone().or(minted)
        } else {
            None
        };
        let mut ctx = trace_id.map(|trace_id| TraceCtx::begin_at(trace_id, verb, t0));
        // Placement hashes the original identity — route keys are
        // canonical and trace-free, so injection cannot re-home the
        // request.
        let key = shard_key(line);
        let rewritten;
        let outbound = if injected {
            let ctx = ctx.as_mut().expect("minted implies a trace context");
            ctx.event("inject", 0, None);
            rewritten = attach_trace(Some(ctx.id()), line);
            rewritten.as_str()
        } else {
            line
        };
        let reply = self.forward(outbound, key, conns, &mut ctx, t0, client_trace.as_deref());
        metrics
            .hist_forward
            .record(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        if let Some(mut ctx) = ctx {
            ctx.finish_root(crate::server::outcome_of(&reply));
            self.inner.recorder.commit(ctx);
        }
        reply
    }

    /// Broadcasts a line to every backend (calibration uploads must
    /// reach all shards — each keeps its own snapshot store). Replies
    /// with the first success, `overloaded` if nobody answered.
    fn broadcast(
        &self,
        line: &str,
        conns: &mut BackendConns,
        client_trace: Option<&str>,
    ) -> String {
        let framed = frame(line);
        let mut reply = None;
        for i in 0..self.inner.config.backends.len() {
            match self.call(i, conns, &framed) {
                Ok(body) => {
                    if reply.is_none() {
                        reply = Some(body);
                    }
                }
                Err(_) => {
                    conns.conns[i] = None;
                    self.set_alive(i, false);
                }
            }
        }
        match reply {
            Some(body) => {
                ServiceMetrics::bump(&self.inner.metrics.forwarded);
                body
            }
            None => {
                ServiceMetrics::bump(&self.inner.metrics.overloaded);
                // Backend replies echo the trace themselves; this body
                // is proxy-fabricated, so the echo is on us.
                attach_trace(client_trace, &overloaded_body())
            }
        }
    }

    /// The retry loop (see the module docs): HRW pick → forward →
    /// on failure demote, back off (capped exponential + deterministic
    /// jitter), re-pick among survivors; `overloaded` when the budget
    /// or the fleet is exhausted.
    fn forward(
        &self,
        line: &str,
        key: u64,
        conns: &mut BackendConns,
        ctx: &mut Option<TraceCtx>,
        t0: Instant,
        client_trace: Option<&str>,
    ) -> String {
        let metrics = &self.inner.metrics;
        let framed = frame(line);
        let mut banned = vec![false; self.inner.config.backends.len()];
        for attempt in 0..=self.inner.config.retries {
            let Some(choice) = self.pick(key, &banned) else {
                break;
            };
            if attempt > 0 {
                // Every retry lands on a different shard (failures ban
                // their shard for this request), so retry == failover.
                ServiceMetrics::bump(&metrics.failovers);
                self.backoff(&mut conns.rng, attempt);
            }
            if let Some(ctx) = ctx.as_mut() {
                ctx.event("shard_pick", 0, Some(format!("backend={choice}")));
            }
            let attempt_started = Instant::now();
            let attempted = self.call(choice, conns, &framed);
            let outcome = match &attempted {
                Ok(reply) if !reply_is_draining(reply) => "ok",
                Ok(_) => "draining",
                Err(_) => "io_error",
            };
            if let Some(ctx) = ctx.as_mut() {
                ctx.sample_with_detail(
                    phase_sample("attempt", t0, attempt_started, Instant::now()),
                    0,
                    Some(format!("backend={choice} outcome={outcome}")),
                );
            }
            match attempted {
                Ok(reply) if !reply_is_draining(&reply) => {
                    ServiceMetrics::bump(&metrics.forwarded);
                    ServiceMetrics::bump(&self.inner.served[choice]);
                    // An answer from an optimistically-picked shard is
                    // better evidence than any probe: revive it now.
                    self.set_alive(choice, true);
                    return reply;
                }
                Ok(_draining) => {
                    // A well-formed refusal: the shard is shutting
                    // down. Keep the connection (the goodbye was
                    // clean), stop routing there.
                    ServiceMetrics::bump(&metrics.retries);
                    self.set_alive(choice, false);
                    banned[choice] = true;
                }
                Err(_) => {
                    ServiceMetrics::bump(&metrics.retries);
                    conns.conns[choice] = None;
                    self.set_alive(choice, false);
                    banned[choice] = true;
                }
            }
        }
        ServiceMetrics::bump(&metrics.overloaded);
        attach_trace(client_trace, &overloaded_body())
    }

    /// One framed request/reply exchange with backend `i` over the
    /// connection pool. Any failure — connect, write, read timeout,
    /// EOF, torn frame — is an `Err`; the caller owns demotion.
    fn call(&self, i: usize, conns: &mut BackendConns, framed: &str) -> std::io::Result<String> {
        let config = &self.inner.config;
        if conns.conns[i].is_none() {
            let stream = connect_with_timeout(&config.backends[i], config.connect_timeout)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(config.read_timeout))?;
            let reader = BufReader::new(stream.try_clone()?);
            conns.conns[i] = Some(NdConn {
                reader,
                writer: stream,
            });
        }
        let conn = conns.conns[i].as_mut().expect("just connected");
        conn.writer.write_all(framed.as_bytes())?;
        conn.writer.flush()?;
        let mut reply = String::new();
        let n = conn.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "backend closed the connection",
            ));
        }
        if !reply.ends_with('\n') {
            // EOF mid-line: the torn frame must never reach a client.
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "torn reply frame",
            ));
        }
        reply.pop();
        Ok(reply)
    }

    fn backoff(&self, rng: &mut StdRng, attempt: u32) {
        let base = self.inner.config.backoff_base.as_micros().max(1) as u64;
        let cap = self.inner.config.backoff_cap.as_micros() as u64;
        let exp = base
            .saturating_mul(1u64 << (attempt - 1).min(16))
            .min(cap.max(base));
        // Deterministic jitter (seeded per connection): spreads a
        // thundering herd without making reruns diverge.
        let wait = rng.gen_range(exp / 2..=exp);
        std::thread::sleep(Duration::from_micros(wait));
    }

    fn alive_count(&self) -> usize {
        self.inner
            .alive
            .iter()
            .filter(|a| a.load(Ordering::SeqCst))
            .count()
    }

    /// The proxy's `health` body: ready while at least one backend is
    /// alive and no shutdown has been served. `"proxy":true` marks the
    /// answering tier.
    pub fn health_body(&self) -> String {
        let draining = self.shutdown_requested();
        let alive = self.alive_count();
        format!(
            "{{\"type\":\"health\",\"status\":\"ok\",\"proxy\":true,\"ready\":{},\
             \"draining\":{},\"backends_alive\":{},\"backends_total\":{}}}",
            !draining && alive > 0,
            draining,
            alive,
            self.inner.config.backends.len(),
        )
    }

    /// The proxy's `stats` body: its own counters (backend counters
    /// live on the backends; scrape them directly).
    pub fn stats_body(&self) -> String {
        let m = &self.inner.metrics;
        format!(
            "{{\"type\":\"stats\",\"status\":\"ok\",\"proxy\":true,\"requests\":{},\
             \"forwarded\":{},\"retries\":{},\"failovers\":{},\"overloaded\":{},\
             \"backends_alive\":{},\"backends_total\":{}}}",
            ServiceMetrics::read(&m.requests),
            ServiceMetrics::read(&m.forwarded),
            ServiceMetrics::read(&m.retries),
            ServiceMetrics::read(&m.failovers),
            ServiceMetrics::read(&m.overloaded),
            self.alive_count(),
            self.inner.config.backends.len(),
        )
    }

    /// The proxy's `metrics` body: flat like the backend one, plus
    /// per-backend alive/served gauges.
    pub fn metrics_body(&self) -> String {
        let m = &self.inner.metrics;
        let mut body = format!(
            "{{\"type\":\"metrics\",\"status\":\"ok\",\"proxy\":true,\"requests\":{},\
             \"forwarded\":{},\"retries\":{},\"failovers\":{},\"overloaded\":{},\
             \"draining\":{},\"backends_alive\":{},\"backends_total\":{}",
            ServiceMetrics::read(&m.requests),
            ServiceMetrics::read(&m.forwarded),
            ServiceMetrics::read(&m.retries),
            ServiceMetrics::read(&m.failovers),
            ServiceMetrics::read(&m.overloaded),
            self.shutdown_requested(),
            self.alive_count(),
            self.inner.config.backends.len(),
        );
        for i in 0..self.inner.config.backends.len() {
            let _ = write!(
                body,
                ",\"backend_{i}_alive\":{},\"backend_{i}_served\":{}",
                self.inner.alive[i].load(Ordering::SeqCst),
                ServiceMetrics::read(&self.inner.served[i]),
            );
        }
        body.push('}');
        body
    }

    /// [`Proxy::metrics_body`] plus the extended observability fields
    /// (requested with `"hist":true`): the forwarded-request latency
    /// histogram, end-to-end including retries. Opt-in keeps the plain
    /// body's bytes frozen.
    pub fn metrics_body_hist(&self) -> String {
        let mut body = self.metrics_body();
        body.pop();
        let _ = write!(
            body,
            ",{}",
            self.inner.metrics.hist_forward.json_fields("forward")
        );
        body.push('}');
        body
    }

    /// The proxy's `trace` body: the tier's own most recent span lines
    /// (verbatim), `"proxy":true` marking the answering tier like its
    /// other locally-served verbs.
    pub fn trace_body(&self, n: Option<u64>) -> String {
        let n = n.unwrap_or(TRACE_REPLY_DEFAULT).min(TRACE_REPLY_MAX);
        let spans = self
            .inner
            .recorder
            .recent(usize::try_from(n).unwrap_or(usize::MAX));
        let mut body = format!(
            "{{\"type\":\"trace\",\"status\":\"ok\",\"proxy\":true,\"count\":{},\"spans\":[",
            spans.len()
        );
        for (i, span) in spans.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(span);
        }
        body.push_str("]}");
        body
    }

    /// The proxy's most recent committed span lines, oldest first
    /// (test/tooling access mirroring [`crate::Service::recent_spans`]).
    pub fn recent_spans(&self, n: usize) -> Vec<String> {
        self.inner.recorder.recent(n)
    }

    /// Serves one NDJSON stream through the tier: one response line
    /// per request line, in order. Returns after EOF or shutdown.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the client reader or writer.
    pub fn serve_ndjson(
        &self,
        reader: impl BufRead,
        mut writer: impl Write,
    ) -> std::io::Result<()> {
        let mut conns = self.connections();
        for line in reader.lines() {
            let line = line?;
            if self.shutdown_requested() {
                break;
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut response = self.handle_line(&line, &mut conns);
            response.push('\n');
            writer.write_all(response.as_bytes())?;
            writer.flush()?;
            if self.shutdown_requested() {
                break;
            }
        }
        Ok(())
    }

    /// Accept loop with the default 5 s drain (see
    /// [`Proxy::serve_tcp_with_drain`]).
    ///
    /// # Errors
    ///
    /// Propagates accept errors other than `WouldBlock`.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        self.serve_tcp_with_drain(listener, Duration::from_secs(5))
    }

    /// Accept loop: one thread per client connection. After a
    /// `shutdown` the loop stops; connections still open at the drain
    /// deadline get one final well-formed `error:"draining"` line and
    /// a clean close — same contract as the backends'.
    ///
    /// # Errors
    ///
    /// Propagates accept errors other than `WouldBlock`.
    pub fn serve_tcp_with_drain(
        &self,
        listener: TcpListener,
        drain: Duration,
    ) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut connections: Vec<(JoinHandle<()>, SharedWriter)> = Vec::new();
        while !self.shutdown_requested() {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    connections = connections
                        .into_iter()
                        .filter_map(|(handle, shared)| {
                            if handle.is_finished() {
                                let _ = handle.join();
                                None
                            } else {
                                Some((handle, shared))
                            }
                        })
                        .collect();
                    if stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let Ok(reader) = stream.try_clone() else {
                        continue;
                    };
                    let shared = SharedWriter::new(stream);
                    let writer = shared.clone();
                    let proxy = self.clone();
                    connections.push((
                        std::thread::spawn(move || {
                            let _ = proxy.serve_ndjson(BufReader::new(reader), writer);
                        }),
                        shared,
                    ));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        let deadline = std::time::Instant::now() + drain;
        for (handle, shared) in connections {
            while !handle.is_finished() && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            if !handle.is_finished() {
                shared.close(true);
                let grace = std::time::Instant::now() + Duration::from_millis(250);
                while !handle.is_finished() && std::time::Instant::now() < grace {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            if handle.is_finished() {
                let _ = handle.join();
            }
        }
        Ok(())
    }
}

fn frame(line: &str) -> String {
    let mut framed = String::with_capacity(line.len() + 1);
    framed.push_str(line);
    framed.push('\n');
    framed
}

fn connect_with_timeout(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut last = None;
    for sock in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sock, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("address resolved to nothing")))
}

/// One health probe: connect, ask `health`, require `status:"ok"` and
/// `ready:true` — a draining backend reports `ready:false` and drops
/// out of rotation before its refusals cost clients retries.
fn probe_backend(addr: &str, connect_timeout: Duration, read_timeout: Duration) -> bool {
    let Ok(stream) = connect_with_timeout(addr, connect_timeout) else {
        return false;
    };
    if stream.set_read_timeout(Some(read_timeout)).is_err() || stream.set_nodelay(true).is_err() {
        return false;
    }
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return false,
    };
    if writer.write_all(b"{\"type\":\"health\"}\n").is_err() || writer.flush().is_err() {
        return false;
    }
    let mut reply = String::new();
    let mut reader = BufReader::new(stream);
    match reader.read_line(&mut reply) {
        Ok(n) if n > 0 && reply.ends_with('\n') => Json::parse(reply.trim_end())
            .ok()
            .map(|parsed| {
                parsed.get("status").and_then(Json::as_str) == Some("ok")
                    && parsed.get("ready").and_then(Json::as_bool) == Some(true)
            })
            .unwrap_or(false),
        _ => false,
    }
}

fn prober_loop(inner: &ProxyInner) {
    let interval = inner.config.probe_interval;
    loop {
        // Sleep first (in small slices so shutdown stays responsive):
        // startup is optimistic, and tests opt out of probe traffic by
        // configuring a long interval.
        let deadline = std::time::Instant::now() + interval;
        while std::time::Instant::now() < deadline {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10).min(interval));
        }
        for (i, addr) in inner.config.backends.iter().enumerate() {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let healthy = probe_backend(
                addr,
                inner.config.connect_timeout,
                inner.config.read_timeout,
            );
            inner.alive[i].store(healthy, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route_line(qasm: &str) -> String {
        format!(
            "{{\"type\":\"route\",\"device\":\"q20\",\"router\":\"codar\",\"circuit\":{}}}",
            crate::json::escape(qasm)
        )
    }

    #[test]
    fn shard_keys_canonicalize_circuits() {
        let compact =
            route_line("OPENQASM 2.0; include \"qelib1.inc\"; qreg q[3]; h q[0]; cx q[0], q[2];");
        let spaced = route_line(
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n\nqreg q[3];\n  h q[0];\n  cx q[0],q[2];\n",
        );
        assert_eq!(
            shard_key(&compact),
            shard_key(&spaced),
            "formatting must not split a circuit across shards"
        );
        // Device case-insensitivity matches the backends' lookup.
        let upper = compact.replace("\"q20\"", "\"Q20\"");
        assert_eq!(shard_key(&compact), shard_key(&upper));
        // Different router, different placement key.
        let sabre = compact.replace("\"codar\"", "\"sabre\"");
        assert_ne!(shard_key(&compact), shard_key(&sabre));
        // The id is NOT part of the key: retried/renumbered requests
        // keep their shard.
        let with_id = compact.replacen('{', "{\"id\":7,", 1);
        assert_eq!(shard_key(&compact), shard_key(&with_id));
        // Non-route lines hash raw bytes (any shard answers them).
        assert_ne!(
            shard_key("{\"type\":\"stats\"}"),
            shard_key("{\"type\":\"devices\"}")
        );
    }

    #[test]
    fn hrw_moves_only_the_dead_shards_keyspace() {
        let backends = ["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"];
        let pick = |key: u64, dead: Option<usize>| -> usize {
            backends
                .iter()
                .enumerate()
                .filter(|(i, _)| Some(*i) != dead)
                .max_by_key(|(_, addr)| hrw_weight(key, addr))
                .expect("non-empty")
                .0
        };
        let mut moved = 0;
        let mut hit_each = [0usize; 3];
        for key in 0..300u64 {
            let key = fnv1a_extend(FNV_OFFSET, &key.to_le_bytes());
            let before = pick(key, None);
            hit_each[before] += 1;
            let after = pick(key, Some(2));
            if before != 2 {
                assert_eq!(before, after, "living shards must keep their keys");
            } else {
                moved += 1;
            }
        }
        assert!(moved > 0, "shard 2 owned some keys");
        for (i, hits) in hit_each.iter().enumerate() {
            assert!(*hits > 50, "shard {i} owns a fair share, got {hits}/300");
        }
    }

    #[test]
    fn proxy_answers_health_stats_metrics_itself() {
        let proxy = Proxy::start(ProxyConfig {
            backends: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
            probe_interval: Duration::from_secs(3600),
            ..ProxyConfig::default()
        })
        .unwrap();
        let mut conns = proxy.connections();
        for (line, kind) in [
            ("{\"type\":\"health\",\"id\":1}", "health"),
            ("{\"type\":\"stats\",\"id\":2}", "stats"),
            ("{\"type\":\"metrics\",\"id\":3}", "metrics"),
        ] {
            let reply = proxy.handle_line(line, &mut conns);
            let parsed = Json::parse(&reply).expect(&reply);
            assert_eq!(parsed.get("type").and_then(Json::as_str), Some(kind));
            assert_eq!(parsed.get("status").and_then(Json::as_str), Some("ok"));
            assert_eq!(parsed.get("proxy").and_then(Json::as_bool), Some(true));
        }
        let metrics = Json::parse(&proxy.metrics_body()).unwrap();
        assert_eq!(
            metrics.get("backend_0_alive").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            metrics.get("backends_total").and_then(Json::as_u64),
            Some(2)
        );
        // Flat, like the backend metrics body.
        match &metrics {
            Json::Obj(fields) => {
                for (key, value) in fields {
                    assert!(
                        !matches!(value, Json::Obj(_) | Json::Arr(_)),
                        "proxy metrics field `{key}` is not a scalar"
                    );
                }
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn total_outage_yields_overloaded_not_silence() {
        // Ports 1/2 refuse connections; a route request burns its
        // budget and still gets one well-formed line.
        let proxy = Proxy::start(ProxyConfig {
            backends: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
            connect_timeout: Duration::from_millis(50),
            retries: 3,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_micros(200),
            probe_interval: Duration::from_secs(3600),
            ..ProxyConfig::default()
        })
        .unwrap();
        let mut conns = proxy.connections();
        let reply = proxy.handle_line(&route_line("qreg q[2]; cx q[0], q[1];"), &mut conns);
        let parsed = Json::parse(&reply).expect(&reply);
        assert_eq!(
            parsed.get("status").and_then(Json::as_str),
            Some("overloaded"),
            "{reply}"
        );
        assert!(!proxy.is_alive(0) && !proxy.is_alive(1));
        let health = Json::parse(&proxy.health_body()).unwrap();
        assert_eq!(health.get("ready").and_then(Json::as_bool), Some(false));
        // The counters saw the outage.
        let stats = Json::parse(&proxy.stats_body()).unwrap();
        assert_eq!(stats.get("overloaded").and_then(Json::as_u64), Some(1));
        assert!(stats.get("retries").and_then(Json::as_u64).unwrap() >= 1);
    }

    #[test]
    fn empty_backend_list_is_refused() {
        assert!(Proxy::start(ProxyConfig::default()).is_err());
    }
}
