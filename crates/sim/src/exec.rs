//! Schedule-aware circuit execution.
//!
//! The key point of the fidelity experiment: noise accumulates *per
//! cycle of wall-clock schedule time*, not per gate. A qubit that idles
//! while others run keeps dephasing, so a router that produces a shorter
//! weighted depth (CODAR) loses less fidelity than one that produces a
//! longer one (SABRE) under the same noise rates.

use crate::noise::NoiseModel;
use crate::state::StateVector;
use codar_circuit::schedule::{Schedule, Time};
use codar_circuit::{Circuit, Gate, GateKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `circuit` without noise, applying gates in program order.
///
/// Measurements and resets consume a fixed-seed RNG, so this function is
/// deterministic; for fidelity experiments strip measurements first
/// (see [`strip_measurements`]).
pub fn run_ideal(circuit: &Circuit) -> StateVector {
    let mut state = StateVector::zero(circuit.num_qubits());
    let mut rng = StdRng::seed_from_u64(0);
    for gate in circuit.gates() {
        crate::gates::apply_gate(&mut state, gate, &mut rng);
    }
    state
}

/// Removes `Measure` gates (fidelity is evaluated on the pre-measurement
/// state, as the paper's noisy-QVM comparison does).
pub fn strip_measurements(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_bits(circuit.num_qubits(), circuit.num_bits());
    for gate in circuit.gates() {
        if gate.kind != GateKind::Measure {
            out.push(gate.clone());
        }
    }
    out
}

/// Relabels the circuit onto its actually-used qubits, returning the
/// compacted circuit and the old-index-per-new-index table.
///
/// Routed circuits live on the full device (e.g. 20 or 54 qubits) but
/// touch only a region; compaction keeps the state vector small.
pub fn compact_qubits(circuit: &Circuit) -> (Circuit, Vec<usize>) {
    let mut used: Vec<usize> = circuit
        .gates()
        .iter()
        .flat_map(|g| g.qubits.iter().copied())
        .collect();
    used.sort_unstable();
    used.dedup();
    let mut new_of_old = vec![usize::MAX; circuit.num_qubits()];
    for (new, &old) in used.iter().enumerate() {
        new_of_old[old] = new;
    }
    let mut out = Circuit::with_bits(used.len(), circuit.num_bits());
    for gate in circuit.gates() {
        out.push(gate.map_qubits(|q| new_of_old[q]));
    }
    (out, used)
}

/// Runs one noisy trajectory of `circuit` under the ASAP schedule
/// induced by `duration_of`, with per-cycle `noise`.
///
/// Each qubit tracks its own clock: before a gate, the qubit receives
/// noise for the cycles it sat idle since its previous gate; during the
/// gate it receives noise for the gate's duration; at the end every
/// qubit is advanced to the schedule makespan.
pub fn run_noisy_trajectory(
    circuit: &Circuit,
    mut duration_of: impl FnMut(&Gate) -> Time,
    noise: &NoiseModel,
    rng: &mut impl Rng,
) -> StateVector {
    let schedule = Schedule::asap(circuit, &mut duration_of);
    let mut state = StateVector::zero(circuit.num_qubits());
    let mut qubit_clock: Vec<Time> = vec![0; circuit.num_qubits()];
    for (i, gate) in circuit.gates().iter().enumerate() {
        let start = schedule.start[i];
        let dur = if gate.kind == GateKind::Barrier {
            0
        } else {
            duration_of(gate)
        };
        for &q in &gate.qubits {
            debug_assert!(qubit_clock[q] <= start, "schedule must be causal");
            // Idle decoherence while waiting for the gate to start.
            noise.apply(&mut state, q, start - qubit_clock[q], rng);
        }
        crate::gates::apply_gate(&mut state, gate, rng);
        for &q in &gate.qubits {
            // Decoherence during the gate itself.
            noise.apply(&mut state, q, dur, rng);
            qubit_clock[q] = start + dur;
        }
    }
    for q in 0..circuit.num_qubits() {
        noise.apply(&mut state, q, schedule.makespan - qubit_clock[q], rng);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_bell() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let s = run_ideal(&c);
        assert!((s.probability_of(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn strip_measurements_removes_only_measures() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.measure(0, 0);
        c.cx(0, 1);
        c.measure(1, 1);
        let stripped = strip_measurements(&c);
        assert_eq!(stripped.len(), 2);
        assert_eq!(stripped.count_kind(GateKind::Measure), 0);
    }

    #[test]
    fn compact_relabels_sparse_circuit() {
        let mut c = Circuit::new(20);
        c.h(3);
        c.cx(3, 17);
        c.cx(17, 9);
        let (compact, used) = compact_qubits(&c);
        assert_eq!(compact.num_qubits(), 3);
        assert_eq!(used, vec![3, 9, 17]);
        // Gate operands remapped consistently.
        assert_eq!(compact.gates()[1].qubits, vec![0, 2]);
        assert_eq!(compact.gates()[2].qubits, vec![2, 1]);
    }

    #[test]
    fn compact_of_dense_circuit_is_identity() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let (compact, used) = compact_qubits(&c);
        assert_eq!(compact.gates(), c.gates());
        assert_eq!(used, vec![0, 1]);
    }

    #[test]
    fn noiseless_trajectory_equals_ideal() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        c.t(2);
        let mut rng = StdRng::seed_from_u64(9);
        let s = run_noisy_trajectory(&c, |_| 1, &NoiseModel::ideal(), &mut rng);
        let ideal = run_ideal(&c);
        assert!((s.fidelity_with(&ideal) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_trajectory_damages_fidelity() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        for _ in 0..30 {
            c.t(1); // long tail keeps q0 idle and dephasing
        }
        let ideal = run_ideal(&c);
        let noise = NoiseModel::new(0.05, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut total = 0.0;
        let trials = 300;
        for _ in 0..trials {
            let s = run_noisy_trajectory(&c, |_| 1, &noise, &mut rng);
            total += s.fidelity_with(&ideal);
        }
        let mean = total / trials as f64;
        assert!(mean < 0.95, "expected visible damage, got {mean}");
    }

    #[test]
    fn longer_schedule_hurts_more() {
        // Same gates, but stretched durations: more idle cycles on the
        // spectator qubit -> lower fidelity. This is the mechanism the
        // whole Fig. 9 experiment rests on.
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(1);
        for _ in 0..10 {
            c.t(1);
        }
        let ideal = run_ideal(&c);
        let noise = NoiseModel::new(0.01, 0.0);
        let mean_fid = |stretch: Time| {
            let mut rng = StdRng::seed_from_u64(8);
            let trials = 1500;
            let mut total = 0.0;
            for _ in 0..trials {
                let s = run_noisy_trajectory(&c, |_| stretch, &noise, &mut rng);
                total += s.fidelity_with(&ideal);
            }
            total / trials as f64
        };
        let fast = mean_fid(1);
        let slow = mean_fid(6);
        assert!(fast > slow + 0.02, "fast {fast} vs slow {slow}");
    }
}
