//! Measurement sampling and observable expectations.
//!
//! The fidelity experiments compare states directly; downstream users
//! of a simulator usually want shot counts and Pauli expectations —
//! provided here.

use crate::state::StateVector;
use rand::Rng;
use std::collections::BTreeMap;

/// Samples `shots` computational-basis measurements of the whole
/// register, returning counts keyed by basis-state index (qubit `q` is
/// bit `q`).
///
/// The state is *not* collapsed: this models re-preparing and measuring
/// the circuit `shots` times, as hardware does.
pub fn sample_counts(
    state: &StateVector,
    shots: usize,
    rng: &mut impl Rng,
) -> BTreeMap<usize, usize> {
    // Cumulative distribution over basis states.
    let mut cumulative = Vec::with_capacity(state.amplitudes().len());
    let mut acc = 0.0;
    for a in state.amplitudes() {
        acc += a.norm_sqr();
        cumulative.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    let mut counts = BTreeMap::new();
    for _ in 0..shots {
        let r = rng.gen::<f64>() * total;
        let idx = cumulative.partition_point(|&c| c < r);
        *counts.entry(idx.min(cumulative.len() - 1)).or_insert(0) += 1;
    }
    counts
}

/// `⟨Z_q⟩` — expectation of Pauli-Z on qubit `q`.
pub fn expectation_z(state: &StateVector, q: usize) -> f64 {
    1.0 - 2.0 * state.prob_one(q)
}

/// `⟨Z_a Z_b⟩` — the two-point correlator measured by Ising/QAOA
/// workloads.
pub fn expectation_zz(state: &StateVector, a: usize, b: usize) -> f64 {
    let (ma, mb) = (1usize << a, 1usize << b);
    state
        .amplitudes()
        .iter()
        .enumerate()
        .map(|(i, amp)| {
            let parity = ((i & ma != 0) as i32 + (i & mb != 0) as i32) % 2;
            let sign = if parity == 0 { 1.0 } else { -1.0 };
            sign * amp.norm_sqr()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_ideal;
    use codar_circuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bell() -> StateVector {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        run_ideal(&c)
    }

    #[test]
    fn counts_sum_to_shots() {
        let mut rng = StdRng::seed_from_u64(0);
        let counts = sample_counts(&bell(), 1000, &mut rng);
        assert_eq!(counts.values().sum::<usize>(), 1000);
        // Only |00> and |11> appear.
        assert!(counts.keys().all(|&k| k == 0b00 || k == 0b11));
    }

    #[test]
    fn counts_follow_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let counts = sample_counts(&bell(), 4000, &mut rng);
        let zeros = *counts.get(&0).unwrap_or(&0);
        assert!((1700..2300).contains(&zeros), "got {zeros}/4000");
    }

    #[test]
    fn deterministic_state_samples_one_outcome() {
        let mut c = Circuit::new(2);
        c.x(1);
        let state = run_ideal(&c);
        let mut rng = StdRng::seed_from_u64(2);
        let counts = sample_counts(&state, 50, &mut rng);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&0b10], 50);
    }

    #[test]
    fn z_expectations() {
        let zero = StateVector::zero(1);
        assert!((expectation_z(&zero, 0) - 1.0).abs() < 1e-12);
        let mut c = Circuit::new(1);
        c.x(0);
        assert!((expectation_z(&run_ideal(&c), 0) + 1.0).abs() < 1e-12);
        let mut h = Circuit::new(1);
        h.h(0);
        assert!(expectation_z(&run_ideal(&h), 0).abs() < 1e-12);
    }

    #[test]
    fn zz_correlation_of_bell_state() {
        // Bell state: perfectly correlated in Z.
        assert!((expectation_zz(&bell(), 0, 1) - 1.0).abs() < 1e-12);
        // Product |+>|0>: uncorrelated -> <Z0 Z1> = <Z0><Z1> = 0.
        let mut c = Circuit::new(2);
        c.h(0);
        assert!(expectation_zz(&run_ideal(&c), 0, 1).abs() < 1e-12);
        // |01>: anti-correlated.
        let mut c = Circuit::new(2);
        c.x(0);
        assert!((expectation_zz(&run_ideal(&c), 0, 1) + 1.0).abs() < 1e-12);
    }
}
