//! Sparse amplitude-map simulation for few-branching circuits.
//!
//! Stores only nonzero amplitudes, keyed by 128-bit basis index in an
//! ordered map, so circuits whose states stay concentrated on few basis
//! states (GHZ ladders, adders on basis inputs, few-T Clifford mixes)
//! simulate in memory proportional to the support instead of `2^n` —
//! beyond the dense simulator's 26-qubit cap.
//!
//! Every primitive mirrors the dense [`crate::StateVector`] operation
//! for operation: the same 2×2 matrix formulas, the same index-ordered
//! probability sums (absent entries contribute an exact `+0.0`, which is
//! an additive identity), the same `gen_bool`/`gen::<f64>` randomness
//! shape. On any circuit both backends can run, the sparse amplitudes —
//! and therefore measurement outcomes and sampled counts — are
//! **bit-identical** to the dense ones.
//!
//! A configurable nonzero budget bounds memory: a gate that would grow
//! the support past the budget fails with [`SparseOverflow`] instead of
//! thrashing.

use crate::complex::Complex64;
use crate::gates::{single_qubit_matrix, u3_matrix};
use codar_circuit::{Circuit, Gate, GateKind};
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// Default cap on concurrently-nonzero amplitudes (1 MiB of keys).
pub const DEFAULT_NONZERO_BUDGET: usize = 1 << 16;

/// Error raised when a gate would push the support past the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparseOverflow {
    /// Support size the gate would have produced.
    pub nonzeros: usize,
    /// The configured budget.
    pub budget: usize,
}

impl fmt::Display for SparseOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sparse state exceeded its nonzero-amplitude budget: {} > {}",
            self.nonzeros, self.budget
        )
    }
}

impl std::error::Error for SparseOverflow {}

/// A pure state stored as its nonzero amplitudes.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseState {
    num_qubits: usize,
    amps: BTreeMap<u128, Complex64>,
    budget: usize,
}

impl SparseState {
    /// The all-zeros state with the [default budget](DEFAULT_NONZERO_BUDGET).
    pub fn zero(num_qubits: usize) -> Self {
        SparseState::zero_with_budget(num_qubits, DEFAULT_NONZERO_BUDGET)
    }

    /// The all-zeros state with an explicit nonzero budget.
    pub fn zero_with_budget(num_qubits: usize, budget: usize) -> Self {
        assert!(
            num_qubits <= 128,
            "sparse basis indices are 128-bit: {num_qubits} qubits"
        );
        let mut amps = BTreeMap::new();
        amps.insert(0u128, Complex64::ONE);
        SparseState {
            num_qubits,
            amps,
            budget: budget.max(1),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Current support size.
    pub fn nonzeros(&self) -> usize {
        self.amps.len()
    }

    /// The configured nonzero budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Amplitude of one basis state (zero when absent).
    pub fn amplitude(&self, index: u128) -> Complex64 {
        self.amps.get(&index).copied().unwrap_or(Complex64::ZERO)
    }

    /// The nonzero amplitudes in ascending basis-index order.
    pub fn entries(&self) -> impl Iterator<Item = (u128, Complex64)> + '_ {
        self.amps.iter().map(|(&i, &a)| (i, a))
    }

    /// Squared norm, summed in basis-index order like the dense
    /// simulator (absent entries add an exact `+0.0`).
    pub fn norm_sqr(&self) -> f64 {
        let mut acc = 0.0;
        for a in self.amps.values() {
            acc += a.norm_sqr();
        }
        acc
    }

    /// Probability that qubit `q` reads 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        let mask = 1u128 << q;
        let mut acc = 0.0;
        for (&i, a) in &self.amps {
            if i & mask != 0 {
                acc += a.norm_sqr();
            }
        }
        acc
    }

    /// `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn inner_product(&self, other: &SparseState) -> Complex64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        let mut acc = Complex64::ZERO;
        for (&i, a) in &self.amps {
            if let Some(b) = other.amps.get(&i) {
                acc += a.conj() * *b;
            }
        }
        acc
    }

    /// `|⟨self|other⟩|²`.
    pub fn fidelity_with(&self, other: &SparseState) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    fn check_budget(&self, nonzeros: usize) -> Result<(), SparseOverflow> {
        if nonzeros > self.budget {
            Err(SparseOverflow {
                nonzeros,
                budget: self.budget,
            })
        } else {
            Ok(())
        }
    }

    /// Applies a single-qubit unitary `m` (row-major 2×2) to qubit `q`,
    /// with the dense simulator's exact pairing arithmetic.
    ///
    /// # Errors
    ///
    /// Returns [`SparseOverflow`] if the result would exceed the budget.
    pub fn apply_single(
        &mut self,
        q: usize,
        m: &[[Complex64; 2]; 2],
    ) -> Result<(), SparseOverflow> {
        let mask = 1u128 << q;
        let mut out = BTreeMap::new();
        for (&idx, _) in &self.amps {
            let base = idx & !mask;
            if idx & mask != 0 && self.amps.contains_key(&base) {
                continue; // pair already handled at its base index
            }
            let a0 = self.amplitude(base);
            let a1 = self.amplitude(base | mask);
            let n0 = m[0][0] * a0 + m[0][1] * a1;
            let n1 = m[1][0] * a0 + m[1][1] * a1;
            if n0.re != 0.0 || n0.im != 0.0 {
                out.insert(base, n0);
            }
            if n1.re != 0.0 || n1.im != 0.0 {
                out.insert(base | mask, n1);
            }
        }
        self.check_budget(out.len())?;
        self.amps = out;
        Ok(())
    }

    /// Applies a single-qubit unitary to `target`, controlled on every
    /// qubit in `controls` being 1.
    ///
    /// # Errors
    ///
    /// Returns [`SparseOverflow`] if the result would exceed the budget.
    pub fn apply_controlled(
        &mut self,
        controls: &[usize],
        target: usize,
        m: &[[Complex64; 2]; 2],
    ) -> Result<(), SparseOverflow> {
        let tmask = 1u128 << target;
        let cmask: u128 = controls.iter().map(|&c| 1u128 << c).sum();
        let mut out = BTreeMap::new();
        for (&idx, &amp) in &self.amps {
            if idx & cmask != cmask {
                out.insert(idx, amp);
                continue;
            }
            let base = idx & !tmask;
            if idx & tmask != 0 && self.amps.contains_key(&base) {
                continue;
            }
            let a0 = self.amplitude(base);
            let a1 = self.amplitude(base | tmask);
            let n0 = m[0][0] * a0 + m[0][1] * a1;
            let n1 = m[1][0] * a0 + m[1][1] * a1;
            if n0.re != 0.0 || n0.im != 0.0 {
                out.insert(base, n0);
            }
            if n1.re != 0.0 || n1.im != 0.0 {
                out.insert(base | tmask, n1);
            }
        }
        self.check_budget(out.len())?;
        self.amps = out;
        Ok(())
    }

    /// Swaps qubits `a` and `b` — a pure key relabeling, no arithmetic.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        let amask = 1u128 << a;
        let bmask = 1u128 << b;
        let mut out = BTreeMap::new();
        for (&idx, &amp) in &self.amps {
            let bit_a = idx & amask != 0;
            let bit_b = idx & bmask != 0;
            let mut new = idx;
            if bit_a != bit_b {
                new ^= amask | bmask;
            }
            out.insert(new, amp);
        }
        self.amps = out;
    }

    /// Projectively measures qubit `q`, collapsing the state; consumes
    /// one `gen_bool` exactly like the dense simulator.
    pub fn measure_qubit(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.project(q, outcome);
        outcome
    }

    /// Projects qubit `q` onto `value` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has zero probability.
    pub fn project(&mut self, q: usize, value: bool) {
        let mask = 1u128 << q;
        self.amps.retain(|&i, _| ((i & mask) != 0) == value);
        let norm = self.norm_sqr().sqrt();
        assert!(norm > 1e-300, "cannot normalize the zero vector");
        let inv = 1.0 / norm;
        for a in self.amps.values_mut() {
            *a = a.scale(inv);
        }
    }

    /// Applies one IR gate, dispatching exactly like the dense
    /// [`crate::gates::apply_gate`] (same decompositions for `rzz`, `rxx`,
    /// `cswap`, same matrices for everything else).
    ///
    /// # Errors
    ///
    /// Returns [`SparseOverflow`] if the support outgrows the budget.
    pub fn apply_gate(&mut self, gate: &Gate, rng: &mut impl Rng) -> Result<(), SparseOverflow> {
        let q = &gate.qubits;
        match gate.kind {
            GateKind::Barrier => {}
            GateKind::Measure => {
                self.measure_qubit(q[0], rng);
            }
            GateKind::Reset => {
                if self.measure_qubit(q[0], rng) {
                    let x = single_qubit_matrix(GateKind::X, &[]).expect("X is single-qubit");
                    self.apply_single(q[0], &x)?;
                }
            }
            GateKind::Swap => self.apply_swap(q[0], q[1]),
            GateKind::Cx => {
                let x = single_qubit_matrix(GateKind::X, &[]).expect("X is single-qubit");
                self.apply_controlled(&[q[0]], q[1], &x)?;
            }
            GateKind::Cy => {
                let y = single_qubit_matrix(GateKind::Y, &[]).expect("Y is single-qubit");
                self.apply_controlled(&[q[0]], q[1], &y)?;
            }
            GateKind::Cz => {
                let z = single_qubit_matrix(GateKind::Z, &[]).expect("Z is single-qubit");
                self.apply_controlled(&[q[0]], q[1], &z)?;
            }
            GateKind::Ch => {
                let h = single_qubit_matrix(GateKind::H, &[]).expect("H is single-qubit");
                self.apply_controlled(&[q[0]], q[1], &h)?;
            }
            GateKind::Crz => {
                let m = [
                    [
                        Complex64::from_angle(-gate.params[0] / 2.0),
                        Complex64::ZERO,
                    ],
                    [Complex64::ZERO, Complex64::from_angle(gate.params[0] / 2.0)],
                ];
                self.apply_controlled(&[q[0]], q[1], &m)?;
            }
            GateKind::Cu1 => {
                let m = u3_matrix(0.0, 0.0, gate.params[0]);
                self.apply_controlled(&[q[0]], q[1], &m)?;
            }
            GateKind::Cu3 => {
                let m = u3_matrix(gate.params[0], gate.params[1], gate.params[2]);
                self.apply_controlled(&[q[0]], q[1], &m)?;
            }
            GateKind::Rzz => {
                self.apply_rzz(q[0], q[1], gate.params[0])?;
            }
            GateKind::Rxx => {
                let h = single_qubit_matrix(GateKind::H, &[]).expect("H is single-qubit");
                self.apply_single(q[0], &h)?;
                self.apply_single(q[1], &h)?;
                self.apply_rzz(q[0], q[1], gate.params[0])?;
                self.apply_single(q[0], &h)?;
                self.apply_single(q[1], &h)?;
            }
            GateKind::Ccx => {
                let x = single_qubit_matrix(GateKind::X, &[]).expect("X is single-qubit");
                self.apply_controlled(&[q[0], q[1]], q[2], &x)?;
            }
            GateKind::Cswap => {
                let x = single_qubit_matrix(GateKind::X, &[]).expect("X is single-qubit");
                self.apply_controlled(&[q[2]], q[1], &x)?;
                self.apply_controlled(&[q[0], q[1]], q[2], &x)?;
                self.apply_controlled(&[q[2]], q[1], &x)?;
            }
            kind => {
                let m = single_qubit_matrix(kind, &gate.params)
                    .expect("all remaining kinds are single-qubit");
                self.apply_single(q[0], &m)?;
            }
        }
        Ok(())
    }

    fn apply_rzz(&mut self, a: usize, b: usize, theta: f64) -> Result<(), SparseOverflow> {
        let x = single_qubit_matrix(GateKind::X, &[]).expect("X is single-qubit");
        let u1 = u3_matrix(0.0, 0.0, theta);
        self.apply_controlled(&[a], b, &x)?;
        self.apply_single(b, &u1)?;
        self.apply_controlled(&[a], b, &x)?;
        Ok(())
    }

    /// Runs a whole circuit.
    ///
    /// # Errors
    ///
    /// Returns [`SparseOverflow`] at the first gate that would exceed
    /// the budget.
    pub fn apply_circuit(
        &mut self,
        circuit: &Circuit,
        rng: &mut impl Rng,
    ) -> Result<(), SparseOverflow> {
        for gate in circuit.gates() {
            self.apply_gate(gate, rng)?;
        }
        Ok(())
    }

    /// Samples `shots` whole-register measurements without collapsing,
    /// mirroring [`crate::measure::sample_counts`]: cumulative probabilities in
    /// basis-index order, one `gen::<f64>()` per shot. Bit-identical to
    /// the dense sampler whenever both can run the circuit.
    pub fn sample_counts(&self, shots: usize, rng: &mut impl Rng) -> BTreeMap<u128, usize> {
        let mut indices = Vec::with_capacity(self.amps.len());
        let mut cumulative = Vec::with_capacity(self.amps.len());
        let mut acc = 0.0;
        for (&i, a) in &self.amps {
            acc += a.norm_sqr();
            indices.push(i);
            cumulative.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        let mut counts = BTreeMap::new();
        for _ in 0..shots {
            let r = rng.gen::<f64>() * total;
            let idx = cumulative.partition_point(|&c| c < r);
            let member = indices[idx.min(indices.len() - 1)];
            *counts.entry(member).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_ideal;
    use crate::measure::sample_counts;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_sparse(circuit: &Circuit, seed: u64) -> SparseState {
        let mut state = SparseState::zero(circuit.num_qubits());
        let mut rng = StdRng::seed_from_u64(seed);
        state.apply_circuit(circuit, &mut rng).expect("in budget");
        state
    }

    #[test]
    fn bell_pair_support() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let s = run_sparse(&c, 0);
        // The u3-derived X matrix carries ~1e-17 off-diagonal residue
        // (dense keeps the same residue — support mirrors it exactly).
        assert!(s.nonzeros() <= 4, "support {}", s.nonzeros());
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
        assert!((s.amplitude(0b00).norm_sqr() - 0.5).abs() < 1e-12);
        assert!((s.amplitude(0b11).norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn amplitudes_are_bitwise_dense() {
        // A mixed Clifford+T+rotation circuit both backends can run:
        // every sparse amplitude must equal the dense one bit for bit.
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.t(1);
        c.rz(0.37, 2);
        c.cx(1, 2);
        c.h(3);
        c.rzz(0.9, 2, 3);
        c.ccx(0, 1, 3);
        let sparse = run_sparse(&c, 0);
        let dense = run_ideal(&c);
        for (i, &amp) in dense.amplitudes().iter().enumerate() {
            let s = sparse.amplitude(i as u128);
            assert_eq!(s.re.to_bits(), amp.re.to_bits(), "re mismatch at {i}");
            assert_eq!(s.im.to_bits(), amp.im.to_bits(), "im mismatch at {i}");
        }
    }

    #[test]
    fn sampling_is_bitwise_dense() {
        let mut c = Circuit::new(5);
        c.h(0);
        c.cx(0, 1);
        c.t(0);
        c.h(2);
        c.cu1(0.4, 2, 3);
        c.cx(3, 4);
        let sparse = run_sparse(&c, 0);
        let dense = run_ideal(&c);
        for seed in 0..5 {
            let a = sparse.sample_counts(200, &mut StdRng::seed_from_u64(seed));
            let b = sample_counts(&dense, 200, &mut StdRng::seed_from_u64(seed));
            let b128: BTreeMap<u128, usize> = b.into_iter().map(|(k, v)| (k as u128, v)).collect();
            assert_eq!(a, b128, "seed {seed}");
        }
    }

    #[test]
    fn measurement_stream_matches_dense() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.measure(0, 0);
        c.h(2);
        c.measure(2, 1);
        for seed in 0..16 {
            let sparse = run_sparse(&c, seed);
            let mut dense = crate::StateVector::zero(3);
            let mut rng = StdRng::seed_from_u64(seed);
            for g in c.gates() {
                crate::gates::apply_gate(&mut dense, g, &mut rng);
            }
            for (i, &amp) in dense.amplitudes().iter().enumerate() {
                let s = sparse.amplitude(i as u128);
                assert_eq!(s.re.to_bits(), amp.re.to_bits(), "seed {seed} idx {i}");
                assert_eq!(s.im.to_bits(), amp.im.to_bits(), "seed {seed} idx {i}");
            }
        }
    }

    #[test]
    fn budget_overflow_is_reported() {
        let mut s = SparseState::zero_with_budget(4, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q);
        }
        let err = s.apply_circuit(&c, &mut rng).unwrap_err();
        assert_eq!(err.budget, 3);
        assert!(err.nonzeros > 3);
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn ghz_beyond_dense_cap() {
        // 100 qubits: two dominant members plus one ~1e-17 residue per
        // CX (the dense simulator's u3-derived X matrix is not exactly
        // off-diagonal); support stays linear in n, far under budget.
        let n = 100;
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 0..n - 1 {
            c.cx(i, i + 1);
        }
        let s = run_sparse(&c, 0);
        assert!(s.nonzeros() <= 2 * n, "support {}", s.nonzeros());
        assert!((s.amplitude(0).norm_sqr() - 0.5).abs() < 1e-12);
        assert!((s.amplitude((1u128 << n) - 1).norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn swap_relabels_keys() {
        let mut c = Circuit::new(3);
        c.x(0);
        c.h(1);
        c.swap(0, 2);
        let s = run_sparse(&c, 0);
        assert!((s.prob_one(2) - 1.0).abs() < 1e-12);
        assert!(s.prob_one(0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_equivalent_preparations() {
        let mut a = Circuit::new(2);
        a.h(0);
        a.z(0);
        a.h(0); // = X
        let mut b = Circuit::new(2);
        b.x(0);
        let sa = run_sparse(&a, 0);
        let sb = run_sparse(&b, 0);
        assert!((sa.fidelity_with(&sb) - 1.0).abs() < 1e-12);
    }
}
