//! Noisy state-vector simulation for the fidelity experiments (paper
//! Sec. V-B, Fig. 9).
//!
//! The paper evaluates fidelity on the OriginQ noisy quantum virtual
//! machine, "based on Qubit Dephasing and Damping model". This crate
//! reproduces that substrate:
//!
//! * [`complex`] / [`state`] — a dependency-free complex state vector,
//! * [`gates`] — unitary application for every IR gate kind,
//! * [`noise`] — per-cycle dephasing and amplitude-damping channels,
//! * [`exec`] — schedule-aware execution: each qubit accumulates noise
//!   for exactly the cycles it spends between gates, so *shorter
//!   schedules suffer less decoherence* — the effect CODAR exploits,
//! * [`mod@fidelity`] — Monte-Carlo trajectory fidelity estimation,
//! * [`stabilizer`] — a bit-packed Aaronson–Gottesman tableau for
//!   Clifford circuits at device scale (hundreds of qubits),
//! * [`sparse`] — an amplitude-map simulator, bit-identical to the
//!   dense engine, bounded by support size instead of qubit count,
//! * [`backend`] — the [`Backend`] selector unifying the three engines
//!   with per-circuit auto-classification.
//!
//! # Examples
//!
//! ```
//! use codar_circuit::Circuit;
//! use codar_sim::{NoiseModel, StateVector};
//! use codar_sim::exec::run_ideal;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0);
//! bell.cx(0, 1);
//! let state = run_ideal(&bell);
//! // |00> and |11> each with probability 1/2.
//! assert!((state.probability_of(0b00) - 0.5).abs() < 1e-12);
//! assert!((state.probability_of(0b11) - 0.5).abs() < 1e-12);
//! ```

pub mod backend;
pub mod complex;
pub mod exec;
pub mod fidelity;
pub mod gates;
pub mod measure;
pub mod noise;
pub mod sparse;
pub mod stabilizer;
pub mod state;

pub use backend::{Backend, BackendError, SimBackend};
pub use complex::Complex64;
pub use fidelity::{fidelity, FidelityReport};
pub use noise::NoiseModel;
pub use sparse::SparseState;
pub use stabilizer::StabilizerState;
pub use state::StateVector;
