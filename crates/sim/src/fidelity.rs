//! Monte-Carlo fidelity estimation (the paper's Fig. 9 measurement).

use crate::exec::{compact_qubits, run_noisy_trajectory, strip_measurements};
use crate::noise::NoiseModel;
use crate::state::StateVector;
use codar_circuit::schedule::Time;
use codar_circuit::{Circuit, Gate};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `|⟨a|b⟩|²` for two pure states.
///
/// # Panics
///
/// Panics if the states have different qubit counts.
pub fn fidelity(a: &StateVector, b: &StateVector) -> f64 {
    a.fidelity_with(b)
}

/// The result of a trajectory-averaged fidelity estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityReport {
    /// Mean fidelity over trajectories.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of trajectories averaged.
    pub trajectories: usize,
}

impl FidelityReport {
    /// Estimates the fidelity of `circuit` (a *scheduled physical*
    /// circuit, e.g. a router output) under `noise`, against its own
    /// noiseless execution.
    ///
    /// Measurements are stripped, unused device qubits compacted away,
    /// and `trajectories` quantum-jump runs averaged. Deterministic for
    /// a fixed `seed`.
    ///
    /// # Examples
    ///
    /// ```
    /// use codar_circuit::Circuit;
    /// use codar_sim::{FidelityReport, NoiseModel};
    ///
    /// let mut bell = Circuit::new(2);
    /// bell.h(0);
    /// bell.cx(0, 1);
    /// let report = FidelityReport::estimate(
    ///     &bell,
    ///     |_| 1,
    ///     &NoiseModel::ideal(),
    ///     10,
    ///     0,
    /// );
    /// assert!((report.mean - 1.0).abs() < 1e-12);
    /// ```
    pub fn estimate(
        circuit: &Circuit,
        mut duration_of: impl FnMut(&Gate) -> Time,
        noise: &NoiseModel,
        trajectories: usize,
        seed: u64,
    ) -> FidelityReport {
        assert!(trajectories > 0, "need at least one trajectory");
        let (compacted, _) = compact_qubits(&strip_measurements(circuit));
        let ideal = {
            let mut rng = StdRng::seed_from_u64(seed);
            run_noisy_trajectory(&compacted, &mut duration_of, &NoiseModel::ideal(), &mut rng)
        };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..trajectories {
            let state = run_noisy_trajectory(&compacted, &mut duration_of, noise, &mut rng);
            let f = fidelity(&ideal, &state);
            sum += f;
            sum_sq += f * f;
        }
        let n = trajectories as f64;
        let mean = sum / n;
        let variance = (sum_sq / n - mean * mean).max(0.0);
        FidelityReport {
            mean,
            std_error: (variance / n).sqrt(),
            trajectories,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 1..n {
            c.cx(i - 1, i);
        }
        c
    }

    #[test]
    fn ideal_noise_gives_unit_fidelity() {
        let report = FidelityReport::estimate(&ghz(3), |_| 1, &NoiseModel::ideal(), 5, 42);
        assert!((report.mean - 1.0).abs() < 1e-12);
        assert!(report.std_error < 1e-12);
    }

    #[test]
    fn estimation_is_deterministic_per_seed() {
        let noise = NoiseModel::new(0.01, 0.001);
        let a = FidelityReport::estimate(&ghz(3), |_| 1, &noise, 50, 7);
        let b = FidelityReport::estimate(&ghz(3), |_| 1, &noise, 50, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn noise_reduces_fidelity() {
        let mut c = ghz(3);
        for _ in 0..20 {
            c.t(0);
        }
        let noise = NoiseModel::new(0.02, 0.0);
        let report = FidelityReport::estimate(&c, |_| 1, &noise, 200, 3);
        assert!(report.mean < 0.99, "mean {}", report.mean);
        assert!(report.mean > 0.1);
        assert!(report.std_error > 0.0);
    }

    #[test]
    fn measurements_are_stripped() {
        let mut c = ghz(2);
        c.measure(0, 0);
        c.measure(1, 1);
        // Without stripping, the fidelity would be that of collapsed
        // states; stripped, the ideal run is deterministic and fidelity
        // under zero noise is exactly 1.
        let report = FidelityReport::estimate(&c, |_| 1, &NoiseModel::ideal(), 5, 0);
        assert!((report.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_physical_circuit_is_compacted() {
        // A "device-sized" circuit touching 3 of 20 qubits must not
        // allocate 2^20 amplitudes.
        let mut c = Circuit::new(20);
        c.h(5);
        c.cx(5, 12);
        c.cx(12, 19);
        let report = FidelityReport::estimate(&c, |_| 1, &NoiseModel::ideal(), 3, 0);
        assert!((report.mean - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_trajectories_panics() {
        FidelityReport::estimate(&ghz(2), |_| 1, &NoiseModel::ideal(), 0, 0);
    }
}
