//! Unitary application for every IR gate kind.

use crate::complex::Complex64;
use crate::state::StateVector;
use codar_circuit::{Gate, GateKind};
use rand::Rng;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// The 2×2 matrix of `u3(θ, φ, λ)` — the general single-qubit unitary
/// in the OpenQASM convention.
pub fn u3_matrix(theta: f64, phi: f64, lambda: f64) -> [[Complex64; 2]; 2] {
    let half = theta / 2.0;
    let c = Complex64::from(half.cos());
    let s = Complex64::from(half.sin());
    [
        [c, -(Complex64::from_angle(lambda) * s)],
        [
            Complex64::from_angle(phi) * s,
            Complex64::from_angle(phi + lambda) * c,
        ],
    ]
}

/// The single-qubit matrix for a gate kind, when it has one.
pub fn single_qubit_matrix(kind: GateKind, params: &[f64]) -> Option<[[Complex64; 2]; 2]> {
    Some(match kind {
        GateKind::Id => u3_matrix(0.0, 0.0, 0.0),
        GateKind::X => u3_matrix(PI, 0.0, PI),
        GateKind::Y => u3_matrix(PI, FRAC_PI_2, FRAC_PI_2),
        GateKind::Z => u3_matrix(0.0, 0.0, PI),
        GateKind::H => u3_matrix(FRAC_PI_2, 0.0, PI),
        GateKind::S => u3_matrix(0.0, 0.0, FRAC_PI_2),
        GateKind::Sdg => u3_matrix(0.0, 0.0, -FRAC_PI_2),
        GateKind::T => u3_matrix(0.0, 0.0, FRAC_PI_4),
        GateKind::Tdg => u3_matrix(0.0, 0.0, -FRAC_PI_4),
        GateKind::Rx => u3_matrix(params[0], -FRAC_PI_2, FRAC_PI_2),
        GateKind::Ry => u3_matrix(params[0], 0.0, 0.0),
        GateKind::Rz | GateKind::U1 => u3_matrix(0.0, 0.0, params[0]),
        // r(θ, φ) rotates about cos(φ)X + sin(φ)Y:
        // u3(θ, φ − π/2, π/2 − φ) up to global phase.
        GateKind::R => u3_matrix(params[0], params[1] - FRAC_PI_2, FRAC_PI_2 - params[1]),
        GateKind::U2 => u3_matrix(FRAC_PI_2, params[0], params[1]),
        GateKind::U3 => u3_matrix(params[0], params[1], params[2]),
        _ => return None,
    })
}

/// Applies one IR gate to `state`.
///
/// `Measure` and `Reset` are stochastic and consume randomness from
/// `rng`; `Barrier` is a no-op on the state.
///
/// # Panics
///
/// Panics if a gate's qubit index exceeds the state's qubit count.
pub fn apply_gate(state: &mut StateVector, gate: &Gate, rng: &mut impl Rng) {
    let q = &gate.qubits;
    match gate.kind {
        GateKind::Barrier => {}
        GateKind::Measure => {
            state.measure_qubit(q[0], rng);
        }
        GateKind::Reset => {
            if state.measure_qubit(q[0], rng) {
                let x = single_qubit_matrix(GateKind::X, &[]).expect("X is single-qubit");
                state.apply_single(q[0], &x);
            }
        }
        GateKind::Swap => state.apply_swap(q[0], q[1]),
        GateKind::Cx => {
            let x = single_qubit_matrix(GateKind::X, &[]).expect("X is single-qubit");
            state.apply_controlled(&[q[0]], q[1], &x);
        }
        GateKind::Cy => {
            let y = single_qubit_matrix(GateKind::Y, &[]).expect("Y is single-qubit");
            state.apply_controlled(&[q[0]], q[1], &y);
        }
        GateKind::Cz => {
            let z = single_qubit_matrix(GateKind::Z, &[]).expect("Z is single-qubit");
            state.apply_controlled(&[q[0]], q[1], &z);
        }
        GateKind::Ch => {
            let h = single_qubit_matrix(GateKind::H, &[]).expect("H is single-qubit");
            state.apply_controlled(&[q[0]], q[1], &h);
        }
        GateKind::Crz => {
            // Controlled rz(λ) = diag(1, 1, e^{-iλ/2}, e^{iλ/2}).
            let m = rz_matrix(gate.params[0]);
            state.apply_controlled(&[q[0]], q[1], &m);
        }
        GateKind::Cu1 => {
            let m = u3_matrix(0.0, 0.0, gate.params[0]);
            state.apply_controlled(&[q[0]], q[1], &m);
        }
        GateKind::Cu3 => {
            let m = u3_matrix(gate.params[0], gate.params[1], gate.params[2]);
            state.apply_controlled(&[q[0]], q[1], &m);
        }
        GateKind::Rzz => {
            // exp(-iθ/2 Z⊗Z): phase e^{-iθ/2} on even parity, e^{iθ/2}
            // on odd parity; realized as cx; rz(θ); cx up to global
            // phase — apply directly for exactness.
            apply_rzz(state, q[0], q[1], gate.params[0]);
        }
        GateKind::Rxx => {
            // exp(-iθ/2 X⊗X) = (H⊗H) · exp(-iθ/2 Z⊗Z) · (H⊗H).
            let h = single_qubit_matrix(GateKind::H, &[]).expect("H is single-qubit");
            state.apply_single(q[0], &h);
            state.apply_single(q[1], &h);
            apply_rzz(state, q[0], q[1], gate.params[0]);
            state.apply_single(q[0], &h);
            state.apply_single(q[1], &h);
        }
        GateKind::Ccx => {
            let x = single_qubit_matrix(GateKind::X, &[]).expect("X is single-qubit");
            state.apply_controlled(&[q[0], q[1]], q[2], &x);
        }
        GateKind::Cswap => {
            // Fredkin: swap q1,q2 when q0 is 1 = three Toffolis, or
            // directly: controlled swap via cx+ccx identity.
            let x = single_qubit_matrix(GateKind::X, &[]).expect("X is single-qubit");
            state.apply_controlled(&[q[2]], q[1], &x);
            state.apply_controlled(&[q[0], q[1]], q[2], &x);
            state.apply_controlled(&[q[2]], q[1], &x);
        }
        kind => {
            let m = single_qubit_matrix(kind, &gate.params)
                .expect("all remaining kinds are single-qubit");
            state.apply_single(q[0], &m);
        }
    }
}

/// The `rz(φ)` matrix in its symmetric convention
/// `diag(e^{-iφ/2}, e^{iφ/2})` (used for `crz`, matching `qelib1.inc`).
fn rz_matrix(phi: f64) -> [[Complex64; 2]; 2] {
    [
        [Complex64::from_angle(-phi / 2.0), Complex64::ZERO],
        [Complex64::ZERO, Complex64::from_angle(phi / 2.0)],
    ]
}

fn apply_rzz(state: &mut StateVector, a: usize, b: usize, theta: f64) {
    // cx a,b ; u1(theta) b ; cx a,b — matches the qelib1 definition.
    let x = single_qubit_matrix(GateKind::X, &[]).expect("X is single-qubit");
    let u1 = u3_matrix(0.0, 0.0, theta);
    state.apply_controlled(&[a], b, &x);
    state.apply_single(b, &u1);
    state.apply_controlled(&[a], b, &x);
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_circuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(circuit: &Circuit) -> StateVector {
        let mut state = StateVector::zero(circuit.num_qubits());
        let mut rng = StdRng::seed_from_u64(0);
        for g in circuit.gates() {
            apply_gate(&mut state, g, &mut rng);
        }
        state
    }

    fn assert_prob(state: &StateVector, index: usize, p: f64) {
        assert!(
            (state.probability_of(index) - p).abs() < 1e-10,
            "P[{index}] = {} != {p}",
            state.probability_of(index)
        );
    }

    #[test]
    fn bell_pair() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let s = run(&c);
        assert_prob(&s, 0b00, 0.5);
        assert_prob(&s, 0b11, 0.5);
    }

    #[test]
    fn unitarity_of_every_single_qubit_matrix() {
        for &kind in GateKind::all_unitary() {
            let params = vec![0.37; kind.num_params()];
            if let Some(m) = single_qubit_matrix(kind, &params) {
                // M†M = I
                for i in 0..2 {
                    for j in 0..2 {
                        let mut acc = Complex64::ZERO;
                        for k in 0..2 {
                            acc += m[k][i].conj() * m[k][j];
                        }
                        let expect = if i == j { 1.0 } else { 0.0 };
                        assert!(
                            (acc - Complex64::from(expect)).norm() < 1e-12,
                            "{kind}: M†M[{i}][{j}] = {acc}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn swap_gate_and_three_cnots_agree() {
        let mut prep = Circuit::new(2);
        prep.h(0);
        prep.t(0);
        prep.ry(0.3, 1);
        let mut with_swap = prep.clone();
        with_swap.swap(0, 1);
        let mut with_cnots = prep.clone();
        with_cnots.cx(0, 1);
        with_cnots.cx(1, 0);
        with_cnots.cx(0, 1);
        let a = run(&with_swap);
        let b = run(&with_cnots);
        assert!((a.fidelity_with(&b) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ccx_and_decomposition_agree() {
        let mut prep = Circuit::new(3);
        prep.h(0);
        prep.h(1);
        prep.ry(0.7, 2);
        let mut direct = prep.clone();
        direct.ccx(0, 1, 2);
        let decomposed = codar_circuit::decompose::decompose_three_qubit_gates(&direct);
        let a = run(&direct);
        let b = run(&decomposed);
        assert!(
            (a.fidelity_with(&b) - 1.0).abs() < 1e-10,
            "fidelity {}",
            a.fidelity_with(&b)
        );
    }

    #[test]
    fn cz_symmetry() {
        // CZ is symmetric: cz(a,b) == cz(b,a).
        let mut prep = Circuit::new(2);
        prep.h(0);
        prep.h(1);
        let mut ab = prep.clone();
        ab.cz(0, 1);
        let mut ba = prep.clone();
        ba.cz(1, 0);
        let a = run(&ab);
        let b = run(&ba);
        assert!((a.fidelity_with(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rzz_matches_qelib_definition() {
        let mut prep = Circuit::new(2);
        prep.h(0);
        prep.ry(1.1, 1);
        let mut direct = prep.clone();
        direct.rzz(0.9, 0, 1);
        let mut expanded = prep.clone();
        expanded.cx(0, 1);
        expanded.u1(0.9, 1);
        expanded.cx(0, 1);
        let a = run(&direct);
        let b = run(&expanded);
        assert!((a.fidelity_with(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cswap_is_conditional_swap() {
        // Control 0: nothing happens.
        let mut c = Circuit::new(3);
        c.x(1); // |010>
        c.add(GateKind::Cswap, vec![0, 1, 2], vec![]);
        let s = run(&c);
        assert_prob(&s, 0b010, 1.0);
        // Control 1: swap targets.
        let mut c = Circuit::new(3);
        c.x(0);
        c.x(1); // |011>
        c.add(GateKind::Cswap, vec![0, 1, 2], vec![]);
        let s = run(&c);
        assert_prob(&s, 0b101, 1.0);
    }

    #[test]
    fn reset_restores_zero() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.add(GateKind::Reset, vec![0], vec![]);
        let s = run(&c);
        assert_prob(&s, 0, 1.0);
    }

    #[test]
    fn measure_collapses_in_circuit() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure(0, 0);
        let s = run(&c);
        // Collapsed to one basis state.
        let p0 = s.probability_of(0);
        assert!((p0 - 1.0).abs() < 1e-12 || p0 < 1e-12);
    }

    #[test]
    fn qft2_amplitudes() {
        // QFT on |00>: uniform superposition.
        let mut c = Circuit::new(2);
        c.h(0);
        c.cu1(std::f64::consts::FRAC_PI_2, 1, 0);
        c.h(1);
        let s = run(&c);
        for i in 0..4 {
            assert!((s.probability_of(i) - 0.25).abs() < 1e-10);
        }
    }

    #[test]
    fn x_via_hzh() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.z(0);
        c.h(0);
        let s = run(&c);
        assert_prob(&s, 1, 1.0);
    }

    #[test]
    fn s_t_phases_compose() {
        // T·T = S; S·S = Z.
        let mut a = Circuit::new(1);
        a.h(0);
        a.t(0);
        a.t(0);
        a.sdg(0);
        a.h(0);
        let s = run(&a);
        assert_prob(&s, 0, 1.0);
    }
}
