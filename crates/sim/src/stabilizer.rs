//! Aaronson–Gottesman stabilizer tableau simulation.
//!
//! Represents an `n`-qubit stabilizer state as the standard `2n + 1`-row
//! tableau: `n` destabilizer rows, `n` stabilizer rows, and one scratch
//! row used for deterministic-measurement phase computation. Each row is
//! a signed Pauli string encoded as an X bit, a Z bit per qubit and a
//! phase bit (`(x, z) = (1, 1)` encodes `Y`).
//!
//! The tableau is stored **column-major and bit-packed**: for each qubit
//! the X (and Z) bits of all `2n + 1` rows are packed into `u64` words,
//! so a Clifford gate touches a constant number of columns and updates
//! all rows with `⌈(2n + 1) / 64⌉` word operations per column — the
//! whole-tableau cost of a gate is `O(n / w)` words instead of `O(n)`
//! bit flips, and a full `O(n²)`-gate Clifford circuit costs `O(n² / w)`
//! word operations.
//!
//! Measurement follows the CHP algorithm: a qubit whose X column is
//! empty across the stabilizer rows has a deterministic outcome
//! (computed into the scratch row via `rowsum`); otherwise the outcome
//! is a fair coin consumed from the caller's [`Rng`] with the same
//! `gen_bool` call shape the dense simulator uses, so seeded runs stay
//! aligned between backends.

use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

use codar_circuit::{Circuit, Gate, GateKind};

/// Hard cap on `2^k` support enumeration (`k` = free qubits) when
/// sampling: beyond this the member list would not fit in memory.
pub const SUPPORT_ENUMERATION_LIMIT: u32 = 26;

/// Error returned when a non-Clifford gate reaches the tableau.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonCliffordGate {
    /// The offending gate kind.
    pub kind: GateKind,
}

impl fmt::Display for NonCliffordGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate `{}` is not Clifford and cannot run on the stabilizer backend",
            self.kind.name()
        )
    }
}

impl std::error::Error for NonCliffordGate {}

/// True when `kind` is simulable on the tableau: the Clifford generators
/// available in the IR plus the non-unitary `Measure`/`Reset`/`Barrier`.
pub fn is_clifford_kind(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::Id
            | GateKind::X
            | GateKind::Y
            | GateKind::Z
            | GateKind::H
            | GateKind::S
            | GateKind::Sdg
            | GateKind::Cx
            | GateKind::Cy
            | GateKind::Cz
            | GateKind::Swap
            | GateKind::Measure
            | GateKind::Reset
            | GateKind::Barrier
    )
}

/// A canonical signed Pauli generator in row-major packing (one word
/// stream over qubits for X, one for Z, plus the sign bit). Produced by
/// [`StabilizerState::canonical_generators`]; two states are equal up to
/// global phase iff their canonical generator lists are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliRow {
    /// X bits, packed little-endian over qubit index.
    pub x: Vec<u64>,
    /// Z bits, packed little-endian over qubit index.
    pub z: Vec<u64>,
    /// Sign bit: the generator is `(-1)^r · P`.
    pub r: bool,
}

impl PauliRow {
    fn bit(words: &[u64], q: usize) -> bool {
        words[q >> 6] >> (q & 63) & 1 == 1
    }

    /// Multiplies `other` into `self` (`self := other · self`),
    /// accumulating the sign through the Aaronson–Gottesman `g`
    /// function. Both operands must commute (true for members of one
    /// stabilizer group), so the resulting `i`-power is always even.
    fn mul_assign(&mut self, other: &PauliRow, num_qubits: usize) {
        let mut sum: i32 = 2 * (self.r as i32) + 2 * (other.r as i32);
        for q in 0..num_qubits {
            let x1 = PauliRow::bit(&other.x, q) as i32;
            let z1 = PauliRow::bit(&other.z, q) as i32;
            let x2 = PauliRow::bit(&self.x, q) as i32;
            let z2 = PauliRow::bit(&self.z, q) as i32;
            sum += g_phase(x1, z1, x2, z2);
        }
        for (a, b) in self.x.iter_mut().zip(&other.x) {
            *a ^= b;
        }
        for (a, b) in self.z.iter_mut().zip(&other.z) {
            *a ^= b;
        }
        let rem = sum.rem_euclid(4);
        debug_assert!(rem == 0 || rem == 2, "odd i-power in stabilizer product");
        self.r = rem == 2;
    }
}

/// The exponent of `i` contributed by multiplying single-qubit Paulis
/// `(x1, z1) · (x2, z2)` (Aaronson–Gottesman's `g`).
fn g_phase(x1: i32, z1: i32, x2: i32, z2: i32) -> i32 {
    match (x1, z1) {
        (0, 0) => 0,
        (1, 1) => z2 - x2,
        (1, 0) => z2 * (2 * x2 - 1),
        _ => x2 * (1 - 2 * z2),
    }
}

/// The basis-state support of a stabilizer state: a uniform distribution
/// over `2^k` members of an affine subspace of `F₂ⁿ`.
#[derive(Debug, Clone)]
pub struct Support {
    /// All support members as basis indices (qubit `q` is bit `q`),
    /// ascending. Every member has probability `2^-free` exactly.
    pub members: Vec<u128>,
    /// Affine-subspace dimension `k` (`members.len() == 2^k`).
    pub free: u32,
}

/// An `n`-qubit stabilizer state.
#[derive(Debug, Clone)]
pub struct StabilizerState {
    num_qubits: usize,
    /// Words per column (`⌈(2n + 1) / 64⌉` rows packed little-endian).
    words: usize,
    /// X bit columns, `num_qubits * words` long; column `q` occupies
    /// `x[q * words .. (q + 1) * words]`.
    x: Vec<u64>,
    /// Z bit columns, same layout as `x`.
    z: Vec<u64>,
    /// Phase bits of all rows, packed like one extra column.
    r: Vec<u64>,
}

impl StabilizerState {
    /// The all-zeros state `|0…0⟩`: destabilizer `i` is `Xᵢ`, stabilizer
    /// `i` is `Zᵢ`.
    pub fn zero(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 128,
            "stabilizer basis indices are 128-bit: {num_qubits} qubits"
        );
        let rows = 2 * num_qubits + 1;
        let words = rows.div_ceil(64);
        let mut state = StabilizerState {
            num_qubits,
            words,
            x: vec![0; num_qubits * words],
            z: vec![0; num_qubits * words],
            r: vec![0; words],
        };
        for q in 0..num_qubits {
            state.set_bit_x(q, q, true);
            state.set_bit_z(q, num_qubits + q, true);
        }
        state
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    #[inline]
    fn col(&self, q: usize) -> usize {
        q * self.words
    }

    #[inline]
    fn bit_x(&self, q: usize, row: usize) -> bool {
        self.x[self.col(q) + (row >> 6)] >> (row & 63) & 1 == 1
    }

    #[inline]
    fn bit_z(&self, q: usize, row: usize) -> bool {
        self.z[self.col(q) + (row >> 6)] >> (row & 63) & 1 == 1
    }

    #[inline]
    fn bit_r(&self, row: usize) -> bool {
        self.r[row >> 6] >> (row & 63) & 1 == 1
    }

    #[inline]
    fn set_bit_x(&mut self, q: usize, row: usize, value: bool) {
        let idx = self.col(q) + (row >> 6);
        let mask = 1u64 << (row & 63);
        if value {
            self.x[idx] |= mask;
        } else {
            self.x[idx] &= !mask;
        }
    }

    #[inline]
    fn set_bit_z(&mut self, q: usize, row: usize, value: bool) {
        let idx = self.col(q) + (row >> 6);
        let mask = 1u64 << (row & 63);
        if value {
            self.z[idx] |= mask;
        } else {
            self.z[idx] &= !mask;
        }
    }

    #[inline]
    fn set_bit_r(&mut self, row: usize, value: bool) {
        let mask = 1u64 << (row & 63);
        if value {
            self.r[row >> 6] |= mask;
        } else {
            self.r[row >> 6] &= !mask;
        }
    }

    // ---- Clifford generators (all rows updated per word) -------------

    /// Hadamard on `q`: swaps the X and Z columns, `r ^= x·z`.
    pub fn h(&mut self, q: usize) {
        let off = self.col(q);
        for w in 0..self.words {
            let xv = self.x[off + w];
            let zv = self.z[off + w];
            self.r[w] ^= xv & zv;
            self.x[off + w] = zv;
            self.z[off + w] = xv;
        }
    }

    /// Phase gate S on `q`: `r ^= x·z`, then `z ^= x`.
    pub fn s(&mut self, q: usize) {
        let off = self.col(q);
        for w in 0..self.words {
            let xv = self.x[off + w];
            self.r[w] ^= xv & self.z[off + w];
            self.z[off + w] ^= xv;
        }
    }

    /// S†: `z ^= x`, then `r ^= x·z` (with the updated Z).
    pub fn sdg(&mut self, q: usize) {
        let off = self.col(q);
        for w in 0..self.words {
            let xv = self.x[off + w];
            self.z[off + w] ^= xv;
            self.r[w] ^= xv & self.z[off + w];
        }
    }

    /// Pauli-X on `q`: flips signs of rows anticommuting with X.
    pub fn x(&mut self, q: usize) {
        let off = self.col(q);
        for w in 0..self.words {
            self.r[w] ^= self.z[off + w];
        }
    }

    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) {
        let off = self.col(q);
        for w in 0..self.words {
            self.r[w] ^= self.x[off + w] ^ self.z[off + w];
        }
    }

    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) {
        let off = self.col(q);
        for w in 0..self.words {
            self.r[w] ^= self.x[off + w];
        }
    }

    /// CNOT with control `a`, target `b`.
    pub fn cx(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "cx needs distinct qubits");
        let (ca, cb) = (self.col(a), self.col(b));
        for w in 0..self.words {
            let xa = self.x[ca + w];
            let za = self.z[ca + w];
            let xb = self.x[cb + w];
            let zb = self.z[cb + w];
            self.r[w] ^= xa & zb & (xb ^ za ^ !0);
            self.x[cb + w] = xb ^ xa;
            self.z[ca + w] = za ^ zb;
        }
    }

    /// Controlled-Z (symmetric), via `H_b · CX_ab · H_b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    /// Controlled-Y, via `S_b · CX_ab · S†_b`.
    pub fn cy(&mut self, a: usize, b: usize) {
        self.sdg(b);
        self.cx(a, b);
        self.s(b);
    }

    /// SWAP of qubits `a` and `b` — a column exchange, no phase change.
    pub fn swap_qubits(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (ca, cb) = (self.col(a), self.col(b));
        for w in 0..self.words {
            self.x.swap(ca + w, cb + w);
            self.z.swap(ca + w, cb + w);
        }
    }

    /// Relabels qubits: `perm[old] = new` (must be a permutation).
    pub fn permute_qubits(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.num_qubits, "permutation length mismatch");
        let words = self.words;
        let mut new_x = vec![0u64; self.x.len()];
        let mut new_z = vec![0u64; self.z.len()];
        for (old, &new) in perm.iter().enumerate() {
            new_x[new * words..(new + 1) * words]
                .copy_from_slice(&self.x[old * words..(old + 1) * words]);
            new_z[new * words..(new + 1) * words]
                .copy_from_slice(&self.z[old * words..(old + 1) * words]);
        }
        self.x = new_x;
        self.z = new_z;
    }

    // ---- rowsum and measurement --------------------------------------

    /// `row h := row i · row h` with Aaronson–Gottesman sign tracking.
    fn rowsum(&mut self, h: usize, i: usize) {
        let mut sum: i32 = 2 * (self.bit_r(h) as i32) + 2 * (self.bit_r(i) as i32);
        for q in 0..self.num_qubits {
            let x1 = self.bit_x(q, i) as i32;
            let z1 = self.bit_z(q, i) as i32;
            let x2 = self.bit_x(q, h) as i32;
            let z2 = self.bit_z(q, h) as i32;
            sum += g_phase(x1, z1, x2, z2);
            if x1 == 1 {
                self.set_bit_x(q, h, x2 == 0);
            }
            if z1 == 1 {
                self.set_bit_z(q, h, z2 == 0);
            }
        }
        let rem = sum.rem_euclid(4);
        // Destabilizer rows may legitimately accumulate an odd i-power:
        // measurement rowsums combine row i with a pivot it can
        // anticommute with (D_j vs its paired S_j). Their signs are
        // never observed, so truncating the phase is harmless — but
        // stabilizer and scratch rows must always stay even.
        debug_assert!(
            h < self.num_qubits || rem == 0 || rem == 2,
            "odd i-power in stabilizer rowsum"
        );
        self.set_bit_r(h, rem >= 2);
    }

    fn copy_row(&mut self, dst: usize, src: usize) {
        for q in 0..self.num_qubits {
            let xv = self.bit_x(q, src);
            let zv = self.bit_z(q, src);
            self.set_bit_x(q, dst, xv);
            self.set_bit_z(q, dst, zv);
        }
        let rv = self.bit_r(src);
        self.set_bit_r(dst, rv);
    }

    fn clear_row(&mut self, row: usize) {
        for q in 0..self.num_qubits {
            self.set_bit_x(q, row, false);
            self.set_bit_z(q, row, false);
        }
        self.set_bit_r(row, false);
    }

    /// First stabilizer row with an X bit on qubit `q`, if any.
    fn x_pivot(&self, q: usize) -> Option<usize> {
        let n = self.num_qubits;
        (n..2 * n).find(|&row| self.bit_x(q, row))
    }

    /// The deterministic outcome of measuring `q` when no stabilizer
    /// anticommutes with `Z_q` (computed via the scratch row).
    fn deterministic_outcome(&mut self, q: usize) -> bool {
        let n = self.num_qubits;
        let scratch = 2 * n;
        self.clear_row(scratch);
        for i in 0..n {
            if self.bit_x(q, i) {
                self.rowsum(scratch, i + n);
            }
        }
        self.bit_r(scratch)
    }

    /// Probability that measuring `q` yields 1: exactly `0.0`, `0.5` or
    /// `1.0` for a stabilizer state. Mutates only the scratch row.
    pub fn prob_one(&mut self, q: usize) -> f64 {
        if self.x_pivot(q).is_some() {
            0.5
        } else if self.deterministic_outcome(q) {
            1.0
        } else {
            0.0
        }
    }

    /// Projectively measures qubit `q`, collapsing the tableau; returns
    /// the observed bit.
    ///
    /// Always consumes exactly one `gen_bool` from `rng` — the same
    /// randomness shape as the dense [`crate::StateVector::measure_qubit`]
    /// — so mixed-backend runs sharing a seed stay reproducible.
    pub fn measure(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        let n = self.num_qubits;
        let pivot = self.x_pivot(q);
        let p1 = match pivot {
            Some(_) => 0.5,
            None => {
                if self.deterministic_outcome(q) {
                    1.0
                } else {
                    0.0
                }
            }
        };
        let outcome = rng.gen_bool(p1);
        if let Some(p) = pivot {
            for i in 0..2 * n {
                if i != p && self.bit_x(q, i) {
                    self.rowsum(i, p);
                }
            }
            self.copy_row(p - n, p);
            self.clear_row(p);
            self.set_bit_z(q, p, true);
            self.set_bit_r(p, outcome);
        }
        outcome
    }

    /// Applies one IR gate.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordGate`] when the gate has no Clifford tableau
    /// update (`T`, rotations, multi-controlled gates, …).
    pub fn apply_gate(&mut self, gate: &Gate, rng: &mut impl Rng) -> Result<(), NonCliffordGate> {
        let q = &gate.qubits;
        match gate.kind {
            GateKind::Id | GateKind::Barrier => {}
            GateKind::X => self.x(q[0]),
            GateKind::Y => self.y(q[0]),
            GateKind::Z => self.z(q[0]),
            GateKind::H => self.h(q[0]),
            GateKind::S => self.s(q[0]),
            GateKind::Sdg => self.sdg(q[0]),
            GateKind::Cx => self.cx(q[0], q[1]),
            GateKind::Cy => self.cy(q[0], q[1]),
            GateKind::Cz => self.cz(q[0], q[1]),
            GateKind::Swap => self.swap_qubits(q[0], q[1]),
            GateKind::Measure => {
                self.measure(q[0], rng);
            }
            GateKind::Reset => {
                if self.measure(q[0], rng) {
                    self.x(q[0]);
                }
            }
            kind => return Err(NonCliffordGate { kind }),
        }
        Ok(())
    }

    /// Runs a whole circuit on the tableau.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordGate`] at the first unsupported gate.
    pub fn apply_circuit(
        &mut self,
        circuit: &Circuit,
        rng: &mut impl Rng,
    ) -> Result<(), NonCliffordGate> {
        for gate in circuit.gates() {
            self.apply_gate(gate, rng)?;
        }
        Ok(())
    }

    // ---- canonical form, equivalence, support ------------------------

    /// Extracts the stabilizer rows in row-major packing.
    fn stabilizer_rows(&self) -> Vec<PauliRow> {
        let n = self.num_qubits;
        let qwords = n.div_ceil(64).max(1);
        (n..2 * n)
            .map(|row| {
                let mut x = vec![0u64; qwords];
                let mut z = vec![0u64; qwords];
                for q in 0..n {
                    if self.bit_x(q, row) {
                        x[q >> 6] |= 1u64 << (q & 63);
                    }
                    if self.bit_z(q, row) {
                        z[q >> 6] |= 1u64 << (q & 63);
                    }
                }
                PauliRow {
                    x,
                    z,
                    r: self.bit_r(row),
                }
            })
            .collect()
    }

    /// The canonical generator list of the stabilizer group: Gaussian
    /// elimination first over X bits (qubit-ascending pivots), then over
    /// Z bits of the X-free rows. Two stabilizer states are equal (up to
    /// global phase) iff their canonical generators are identical.
    pub fn canonical_generators(&self) -> Vec<PauliRow> {
        let n = self.num_qubits;
        let mut rows = self.stabilizer_rows();
        let mut done = 0;
        for q in 0..n {
            if let Some(p) = (done..rows.len()).find(|&i| PauliRow::bit(&rows[i].x, q)) {
                rows.swap(done, p);
                let pivot = rows[done].clone();
                for (i, row) in rows.iter_mut().enumerate() {
                    if i != done && PauliRow::bit(&row.x, q) {
                        row.mul_assign(&pivot, n);
                    }
                }
                done += 1;
            }
        }
        for q in 0..n {
            if let Some(p) = (done..rows.len()).find(|&i| PauliRow::bit(&rows[i].z, q)) {
                rows.swap(done, p);
                let pivot = rows[done].clone();
                for (i, row) in rows.iter_mut().enumerate() {
                    if i != done && row.x.iter().all(|&w| w == 0) && PauliRow::bit(&row.z, q) {
                        row.mul_assign(&pivot, n);
                    }
                }
                done += 1;
            }
        }
        rows
    }

    /// True when `self` and `other` denote the same quantum state (up to
    /// global phase).
    pub fn equiv(&self, other: &StabilizerState) -> bool {
        self.num_qubits == other.num_qubits
            && self.canonical_generators() == other.canonical_generators()
    }

    /// The exact basis-state support: the state is uniform (`2^-k` each)
    /// over an affine subspace of dimension `k`. Returns `None` when
    /// `k` exceeds [`SUPPORT_ENUMERATION_LIMIT`] (the member list would
    /// be too large to enumerate).
    pub fn support(&self) -> Option<Support> {
        let n = self.num_qubits;
        let rows = self.canonical_generators();
        // Z-only rows are linear constraints `z · y ≡ r (mod 2)` on the
        // support bitstring `y`; the X-pivot rows contribute nothing.
        let z_rows: Vec<&PauliRow> = rows
            .iter()
            .filter(|row| row.x.iter().all(|&w| w == 0))
            .collect();
        // Pivot qubit of each constraint (lowest set Z bit — unique per
        // row after canonicalization).
        let mut pivots = Vec::with_capacity(z_rows.len());
        for row in &z_rows {
            let pivot = (0..n).find(|&q| PauliRow::bit(&row.z, q))?;
            pivots.push(pivot);
        }
        let is_pivot = {
            let mut mask = vec![false; n];
            for &p in &pivots {
                mask[p] = true;
            }
            mask
        };
        let free_cols: Vec<usize> = (0..n).filter(|&q| !is_pivot[q]).collect();
        let k = free_cols.len() as u32;
        if k > SUPPORT_ENUMERATION_LIMIT {
            return None;
        }
        // Particular solution: free bits 0, pivot bits from the signs
        // (rows are in reduced form over the pivot columns).
        let mut y0: u128 = 0;
        for (row, &p) in z_rows.iter().zip(&pivots) {
            if row.r {
                y0 |= 1u128 << p;
            }
        }
        // Null-space basis: one vector per free column.
        let mut basis = Vec::with_capacity(free_cols.len());
        for &f in &free_cols {
            let mut v: u128 = 1u128 << f;
            for (row, &p) in z_rows.iter().zip(&pivots) {
                if PauliRow::bit(&row.z, f) {
                    v |= 1u128 << p;
                }
            }
            basis.push(v);
        }
        let mut members = Vec::with_capacity(1usize << k);
        for combo in 0..(1u64 << k) {
            let mut y = y0;
            for (j, &v) in basis.iter().enumerate() {
                if combo >> j & 1 == 1 {
                    y ^= v;
                }
            }
            members.push(y);
        }
        members.sort_unstable();
        Some(Support { members, free: k })
    }

    /// Samples `shots` whole-register measurements without collapsing,
    /// mirroring the dense [`crate::measure::sample_counts`] contract: one
    /// `gen::<f64>()` per shot against the index-ordered cumulative
    /// distribution. Member probabilities are exact powers of two, so
    /// the cumulative sums carry no rounding error.
    ///
    /// # Errors
    ///
    /// Returns the affine dimension `k` when the support is too large to
    /// enumerate (`k > `[`SUPPORT_ENUMERATION_LIMIT`]).
    pub fn sample_counts(
        &self,
        shots: usize,
        rng: &mut impl Rng,
    ) -> Result<BTreeMap<u128, usize>, u32> {
        let support = match self.support() {
            Some(s) => s,
            None => {
                // Rank of the free space, for the error report.
                let rows = self.canonical_generators();
                let z_rows = rows
                    .iter()
                    .filter(|row| row.x.iter().all(|&w| w == 0))
                    .count();
                return Err((self.num_qubits - z_rows) as u32);
            }
        };
        let p = (support.free as f64).exp2().recip();
        let mut cumulative = Vec::with_capacity(support.members.len());
        let mut acc = 0.0;
        for _ in &support.members {
            acc += p;
            cumulative.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        let mut counts = BTreeMap::new();
        for _ in 0..shots {
            let r = rng.gen::<f64>() * total;
            let idx = cumulative.partition_point(|&c| c < r);
            let member = support.members[idx.min(support.members.len() - 1)];
            *counts.entry(member).or_insert(0) += 1;
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(circuit: &Circuit, seed: u64) -> StabilizerState {
        let mut state = StabilizerState::zero(circuit.num_qubits());
        let mut rng = StdRng::seed_from_u64(seed);
        state.apply_circuit(circuit, &mut rng).expect("clifford");
        state
    }

    #[test]
    fn zero_state_measures_zero() {
        let mut s = StabilizerState::zero(3);
        let mut rng = StdRng::seed_from_u64(0);
        for q in 0..3 {
            assert_eq!(s.prob_one(q), 0.0);
            assert!(!s.measure(q, &mut rng));
        }
    }

    #[test]
    fn x_flips_outcome() {
        let mut s = StabilizerState::zero(2);
        s.x(1);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(s.prob_one(1), 1.0);
        assert!(s.measure(1, &mut rng));
        assert_eq!(s.prob_one(0), 0.0);
    }

    #[test]
    fn hadamard_is_fair_and_collapses() {
        let mut s = StabilizerState::zero(1);
        s.h(0);
        assert_eq!(s.prob_one(0), 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = s.measure(0, &mut rng);
        // Collapsed: re-measuring is deterministic and agrees.
        assert_eq!(s.prob_one(0), if outcome { 1.0 } else { 0.0 });
        assert_eq!(s.measure(0, &mut rng), outcome);
    }

    #[test]
    fn bell_pair_correlates() {
        for seed in 0..32 {
            let mut s = StabilizerState::zero(2);
            s.h(0);
            s.cx(0, 1);
            let mut rng = StdRng::seed_from_u64(seed);
            let a = s.measure(0, &mut rng);
            let b = s.measure(1, &mut rng);
            assert_eq!(a, b, "Bell outcomes must correlate (seed {seed})");
        }
    }

    #[test]
    fn ghz_support_is_two_members() {
        let mut c = Circuit::new(5);
        c.h(0);
        for i in 0..4 {
            c.cx(i, i + 1);
        }
        let s = run(&c, 0);
        let support = s.support().expect("small support");
        assert_eq!(support.free, 1);
        assert_eq!(support.members, vec![0, 0b11111]);
    }

    #[test]
    fn plus_state_support_is_full() {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.h(q);
        }
        let s = run(&c, 0);
        let support = s.support().expect("small support");
        assert_eq!(support.free, 3);
        assert_eq!(support.members, (0..8).collect::<Vec<u128>>());
    }

    #[test]
    fn s_gates_compose_to_z() {
        // H S S H = H Z H = X.
        let mut c = Circuit::new(1);
        c.h(0);
        c.s(0);
        c.s(0);
        c.h(0);
        let mut s = run(&c, 0);
        assert_eq!(s.prob_one(0), 1.0);
        // And S · Sdg = I.
        let mut c = Circuit::new(1);
        c.h(0);
        c.s(0);
        c.sdg(0);
        c.h(0);
        let mut s = run(&c, 0);
        assert_eq!(s.prob_one(0), 0.0);
    }

    #[test]
    fn cz_matches_h_cx_h() {
        let mut a = Circuit::new(2);
        a.h(0);
        a.h(1);
        a.cz(0, 1);
        let mut b = Circuit::new(2);
        b.h(0);
        b.h(1);
        b.h(1);
        b.cx(0, 1);
        b.h(1);
        assert!(run(&a, 0).equiv(&run(&b, 0)));
    }

    #[test]
    fn swap_is_column_exchange() {
        let mut c = Circuit::new(3);
        c.x(0);
        c.swap(0, 2);
        let mut s = run(&c, 0);
        assert_eq!(s.prob_one(0), 0.0);
        assert_eq!(s.prob_one(2), 1.0);
    }

    #[test]
    fn swap_equals_three_cnots() {
        let mut a = Circuit::new(2);
        a.h(0);
        a.s(0);
        a.swap(0, 1);
        let mut b = Circuit::new(2);
        b.h(0);
        b.s(0);
        b.cx(0, 1);
        b.cx(1, 0);
        b.cx(0, 1);
        assert!(run(&a, 0).equiv(&run(&b, 0)));
    }

    #[test]
    fn equiv_distinguishes_phase() {
        // |+⟩ vs |−⟩ differ only in a stabilizer sign.
        let mut plus = StabilizerState::zero(1);
        plus.h(0);
        let mut minus = StabilizerState::zero(1);
        minus.x(0);
        minus.h(0);
        assert!(!plus.equiv(&minus));
        assert!(plus.equiv(&plus.clone()));
    }

    /// Regression: measuring a state whose *destabilizer* carries an X
    /// bit on the measured qubit rowsums an anticommuting pair (D_j
    /// with its paired S_j). The sign truncation there must not trip
    /// the even-phase invariant — minimal case `S·H|0⟩` then measure.
    #[test]
    fn measure_tolerates_anticommuting_destabilizer_rowsum() {
        for seed in 0..16u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = StabilizerState::zero(1);
            s.s(0);
            s.h(0);
            let outcome = s.measure(0, &mut rng);
            // Collapsed: the outcome is now deterministic and repeats.
            assert_eq!(s.prob_one(0), if outcome { 1.0 } else { 0.0 });
            assert_eq!(s.measure(0, &mut rng), outcome);
        }
    }

    #[test]
    fn reset_restores_zero() {
        for seed in 0..8 {
            let mut c = Circuit::new(1);
            c.h(0);
            c.add(GateKind::Reset, vec![0], vec![]);
            let mut s = run(&c, seed);
            assert_eq!(s.prob_one(0), 0.0);
        }
    }

    #[test]
    fn non_clifford_gate_is_rejected() {
        let mut s = StabilizerState::zero(1);
        let mut rng = StdRng::seed_from_u64(0);
        let gate = Gate::new(GateKind::T, vec![0], vec![]);
        let err = s.apply_gate(&gate, &mut rng).unwrap_err();
        assert_eq!(err.kind, GateKind::T);
        assert!(err.to_string().contains("not Clifford"));
    }

    #[test]
    fn permutation_relabels_qubits() {
        let mut c = Circuit::new(3);
        c.x(0);
        c.h(2);
        let mut s = run(&c, 0);
        s.permute_qubits(&[2, 1, 0]);
        assert_eq!(s.prob_one(2), 1.0);
        assert_eq!(s.prob_one(0), 0.5);
        assert_eq!(s.prob_one(1), 0.0);
    }

    #[test]
    fn large_ghz_scales_past_the_dense_cap() {
        // 120 qubits — far beyond the 26-qubit dense limit.
        let n = 120;
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 0..n - 1 {
            c.cx(i, i + 1);
        }
        let s = run(&c, 0);
        let support = s.support().expect("GHZ support is 2 members");
        assert_eq!(support.members.len(), 2);
        assert_eq!(support.members[1], (1u128 << n) - 1);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut c = Circuit::new(4);
        c.h(0);
        c.cx(0, 1);
        c.h(2);
        c.cx(2, 3);
        let s = run(&c, 0);
        let a = s.sample_counts(100, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = s.sample_counts(100, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.values().sum::<usize>(), 100);
        // All sampled outcomes are Bell-pair-correlated on both halves.
        for &idx in a.keys() {
            let low = idx & 0b11;
            let high = idx >> 2 & 0b11;
            assert!(low == 0 || low == 3, "bad member {idx:b}");
            assert!(high == 0 || high == 3, "bad member {idx:b}");
        }
    }
}
