//! Qubit dephasing and amplitude damping channels (Nielsen & Chuang),
//! applied per quantum clock cycle — the noise model of the OriginQ
//! noisy virtual machine the paper evaluates on.
//!
//! Both channels are simulated by Monte-Carlo trajectories (quantum
//! jumps), which keeps the simulation in state-vector space:
//!
//! * **Dephasing** with per-cycle probability `p`: a Z flip occurs with
//!   probability `p` each cycle. Over `k` cycles the net flip
//!   probability is `(1 − (1−2p)^k)/2`.
//! * **Amplitude damping** with per-cycle rate `γ`: over `k` cycles the
//!   effective rate is `γ_k = 1 − (1−γ)^k`. A jump (relaxation to |0⟩)
//!   occurs with probability `γ_k · P(|1⟩)`; otherwise the no-jump
//!   Kraus operator `diag(1, √(1−γ_k))` is applied and the state
//!   renormalized.

use crate::complex::Complex64;
use crate::state::StateVector;
use rand::Rng;

/// Per-cycle noise parameters.
///
/// # Examples
///
/// ```
/// use codar_sim::NoiseModel;
///
/// let noise = NoiseModel::dephasing_dominant();
/// assert!(noise.dephasing_prob > noise.damping_rate);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Probability of a phase (Z) flip per qubit per cycle.
    pub dephasing_prob: f64,
    /// Amplitude-damping rate γ per qubit per cycle.
    pub damping_rate: f64,
    /// Probability of a uniformly random Pauli (X/Y/Z) error per qubit
    /// per cycle — an optional extension beyond the paper's two
    /// channels.
    pub depolarizing_prob: f64,
}

impl NoiseModel {
    /// No noise at all.
    pub fn ideal() -> Self {
        NoiseModel {
            dephasing_prob: 0.0,
            damping_rate: 0.0,
            depolarizing_prob: 0.0,
        }
    }

    /// Builds a model from explicit rates.
    ///
    /// # Panics
    ///
    /// Panics if a rate is outside `[0, 0.5]` (dephasing) or `[0, 1]`
    /// (damping).
    pub fn new(dephasing_prob: f64, damping_rate: f64) -> Self {
        assert!(
            (0.0..=0.5).contains(&dephasing_prob),
            "dephasing probability must be in [0, 0.5]"
        );
        assert!(
            (0.0..=1.0).contains(&damping_rate),
            "damping rate must be in [0, 1]"
        );
        NoiseModel {
            dephasing_prob,
            damping_rate,
            depolarizing_prob: 0.0,
        }
    }

    /// Adds a depolarizing channel on top of the model.
    ///
    /// # Panics
    ///
    /// Panics if the rate is outside `[0, 0.75]` (the depolarizing
    /// channel's physical range).
    pub fn with_depolarizing(mut self, depolarizing_prob: f64) -> Self {
        assert!(
            (0.0..=0.75).contains(&depolarizing_prob),
            "depolarizing probability must be in [0, 0.75]"
        );
        self.depolarizing_prob = depolarizing_prob;
        self
    }

    /// The paper's "noise mainly caused by qubit dephasing" regime.
    pub fn dephasing_dominant() -> Self {
        NoiseModel::new(2e-3, 1e-5)
    }

    /// The paper's "noise mainly caused by qubit damping" regime.
    pub fn damping_dominant() -> Self {
        NoiseModel::new(1e-5, 2e-3)
    }

    /// Whether this model induces no errors.
    pub fn is_ideal(&self) -> bool {
        self.dephasing_prob == 0.0 && self.damping_rate == 0.0 && self.depolarizing_prob == 0.0
    }

    /// Applies `cycles` cycles of noise to qubit `q` of `state`.
    pub fn apply(&self, state: &mut StateVector, q: usize, cycles: u64, rng: &mut impl Rng) {
        if cycles == 0 || self.is_ideal() {
            return;
        }
        // Dephasing: net Z flip over `cycles` steps.
        if self.dephasing_prob > 0.0 {
            let keep = 1.0 - 2.0 * self.dephasing_prob;
            let flip = (1.0 - keep.powi(cycles as i32)) / 2.0;
            if rng.gen_bool(flip.clamp(0.0, 1.0)) {
                state.apply_phase_if_one(q, -Complex64::ONE);
            }
        }
        // Depolarizing: per cycle, a uniformly random Pauli with
        // probability p (trajectory form of the depolarizing channel).
        if self.depolarizing_prob > 0.0 {
            for _ in 0..cycles {
                if rng.gen_bool(self.depolarizing_prob) {
                    let x = crate::gates::single_qubit_matrix(codar_circuit::GateKind::X, &[])
                        .expect("X is single-qubit");
                    let y = crate::gates::single_qubit_matrix(codar_circuit::GateKind::Y, &[])
                        .expect("Y is single-qubit");
                    match rng.gen_range(0..3) {
                        0 => state.apply_single(q, &x),
                        1 => state.apply_single(q, &y),
                        _ => state.apply_phase_if_one(q, -Complex64::ONE),
                    }
                }
            }
        }
        // Amplitude damping: composed single step of rate γ_k.
        if self.damping_rate > 0.0 {
            let gamma_k = 1.0 - (1.0 - self.damping_rate).powi(cycles as i32);
            let p_jump = gamma_k * state.prob_one(q);
            if p_jump > 0.0 && rng.gen_bool(p_jump.clamp(0.0, 1.0)) {
                // Quantum jump: relax |1⟩ → |0⟩.
                state.project(q, true);
                let x = crate::gates::single_qubit_matrix(codar_circuit::GateKind::X, &[])
                    .expect("X is single-qubit");
                state.apply_single(q, &x);
            } else if gamma_k > 0.0 {
                // No-jump evolution: K0 = diag(1, sqrt(1-γ_k)).
                let k0 = [
                    [Complex64::ONE, Complex64::ZERO],
                    [Complex64::ZERO, Complex64::from((1.0 - gamma_k).sqrt())],
                ];
                state.apply_single(q, &k0);
                state.renormalize();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plus_state() -> StateVector {
        let mut s = StateVector::zero(1);
        let m = crate::gates::single_qubit_matrix(codar_circuit::GateKind::H, &[])
            .expect("H is single-qubit");
        s.apply_single(0, &m);
        s
    }

    #[test]
    fn ideal_noise_is_identity() {
        let mut s = plus_state();
        let before = s.clone();
        let mut rng = StdRng::seed_from_u64(0);
        NoiseModel::ideal().apply(&mut s, 0, 100, &mut rng);
        assert_eq!(s, before);
    }

    #[test]
    fn zero_cycles_is_identity() {
        let mut s = plus_state();
        let before = s.clone();
        let mut rng = StdRng::seed_from_u64(0);
        NoiseModel::dephasing_dominant().apply(&mut s, 0, 0, &mut rng);
        assert_eq!(s, before);
    }

    #[test]
    fn dephasing_damages_plus_state_on_average() {
        // |+> is maximally sensitive to dephasing: average fidelity over
        // trajectories after heavy dephasing tends toward 1/2.
        let noise = NoiseModel::new(0.4, 0.0);
        let ideal = plus_state();
        let mut rng = StdRng::seed_from_u64(3);
        let mut total = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            let mut s = plus_state();
            noise.apply(&mut s, 0, 50, &mut rng);
            total += ideal.fidelity_with(&s);
        }
        let mean = total / trials as f64;
        assert!((0.45..0.55).contains(&mean), "mean fidelity {mean}");
    }

    #[test]
    fn dephasing_leaves_zero_state_alone() {
        // |0> is a Z eigenstate: dephasing cannot hurt it.
        let noise = NoiseModel::new(0.4, 0.0);
        let ideal = StateVector::zero(1);
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = StateVector::zero(1);
        noise.apply(&mut s, 0, 100, &mut rng);
        assert!((ideal.fidelity_with(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn damping_decays_excited_state() {
        // |1> decays toward |0> under amplitude damping.
        let noise = NoiseModel::new(0.0, 0.05);
        let mut rng = StdRng::seed_from_u64(11);
        let mut decayed = 0;
        let trials = 500;
        for _ in 0..trials {
            let mut s = StateVector::zero(1);
            let x = crate::gates::single_qubit_matrix(codar_circuit::GateKind::X, &[])
                .expect("X is single-qubit");
            s.apply_single(0, &x); // |1>
            noise.apply(&mut s, 0, 100, &mut rng);
            if s.probability_of(0) > 0.99 {
                decayed += 1;
            }
        }
        // gamma_100 = 1 - 0.95^100 ~ 0.994: nearly all trajectories decay.
        assert!(decayed > 450, "only {decayed}/{trials} decayed");
    }

    #[test]
    fn damping_preserves_ground_state() {
        let noise = NoiseModel::new(0.0, 0.1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = StateVector::zero(1);
        noise.apply(&mut s, 0, 50, &mut rng);
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_cycles_more_damage() {
        // Average fidelity after k cycles decreases with k.
        let noise = NoiseModel::new(0.02, 0.0);
        let ideal = plus_state();
        let mean_fid = |cycles: u64, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let trials = 3000;
            let mut total = 0.0;
            for _ in 0..trials {
                let mut s = plus_state();
                noise.apply(&mut s, 0, cycles, &mut rng);
                total += ideal.fidelity_with(&s);
            }
            total / trials as f64
        };
        let short = mean_fid(2, 1);
        let long = mean_fid(40, 1);
        assert!(
            short > long + 0.05,
            "fidelity should drop with idle time: {short} vs {long}"
        );
    }

    #[test]
    #[should_panic(expected = "dephasing")]
    fn invalid_dephasing_rejected() {
        NoiseModel::new(0.9, 0.0);
    }

    #[test]
    #[should_panic(expected = "depolarizing")]
    fn invalid_depolarizing_rejected() {
        NoiseModel::ideal().with_depolarizing(0.9);
    }

    #[test]
    fn depolarizing_damages_any_state() {
        // Unlike dephasing, depolarizing hurts |0> too.
        let noise = NoiseModel::ideal().with_depolarizing(0.2);
        assert!(!noise.is_ideal());
        let ideal = StateVector::zero(1);
        let mut rng = StdRng::seed_from_u64(6);
        let mut total = 0.0;
        let trials = 1500;
        for _ in 0..trials {
            let mut s = StateVector::zero(1);
            noise.apply(&mut s, 0, 10, &mut rng);
            total += ideal.fidelity_with(&s);
        }
        let mean = total / trials as f64;
        assert!(mean < 0.9, "mean fidelity {mean}");
        assert!(mean > 0.3);
    }

    #[test]
    fn presets_are_complementary() {
        let de = NoiseModel::dephasing_dominant();
        let da = NoiseModel::damping_dominant();
        assert!(de.dephasing_prob > de.damping_rate);
        assert!(da.damping_rate > da.dephasing_prob);
        assert!(!de.is_ideal());
        assert!(NoiseModel::ideal().is_ideal());
    }
}
