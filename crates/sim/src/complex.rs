//! A minimal complex number type (the offline dependency set has no
//! `num-complex`, and we need only a handful of operations).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// 0 + 0i.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// 0 + 1i.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates `re + im·i`.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// `e^{iθ}` — a unit phase.
    pub fn from_angle(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// `|z|²` (no square root).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).norm() < 1e-12
    }

    #[test]
    fn arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert!(close(a + b, Complex64::new(4.0, 1.0)));
        assert!(close(a - b, Complex64::new(-2.0, 3.0)));
        assert!(close(a * b, Complex64::new(5.0, 5.0)));
        assert!(close(-a, Complex64::new(-1.0, -2.0)));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex64::I * Complex64::I, -Complex64::ONE));
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert!(close(z.conj(), Complex64::new(3.0, -4.0)));
        assert!(close(z * z.conj(), Complex64::from(25.0)));
    }

    #[test]
    fn from_angle_is_unit() {
        for k in 0..8 {
            let z = Complex64::from_angle(k as f64 * 0.7853981633974483);
            assert!((z.norm() - 1.0).abs() < 1e-12);
        }
        assert!(close(
            Complex64::from_angle(std::f64::consts::PI),
            -Complex64::ONE
        ));
    }

    #[test]
    fn display_signs() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
    }

    #[test]
    fn mul_assign_and_add_assign() {
        let mut z = Complex64::ONE;
        z *= Complex64::I;
        z += Complex64::ONE;
        assert!(close(z, Complex64::new(1.0, 1.0)));
    }
}
