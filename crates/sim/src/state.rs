//! The state vector and its primitive operations.
//!
//! Qubit `q` is bit `q` of the basis-state index (little-endian): basis
//! state `|b_{n-1} … b_1 b_0⟩` has index `Σ b_q · 2^q`.

use crate::complex::Complex64;
use rand::Rng;

/// A pure `n`-qubit state.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits > 26` (amplitude storage would exceed 1 GiB).
    pub fn zero(num_qubits: usize) -> Self {
        assert!(
            num_qubits <= 26,
            "state vector too large: {num_qubits} qubits"
        );
        let mut amps = vec![Complex64::ZERO; 1 << num_qubits];
        amps[0] = Complex64::ONE;
        StateVector { num_qubits, amps }
    }

    /// Builds a state from explicit amplitudes (must have power-of-two
    /// length and unit norm up to `1e-6`).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or the norm is off.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        assert!(
            amps.len().is_power_of_two(),
            "length must be a power of two"
        );
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-6, "state is not normalized: {norm}");
        StateVector {
            num_qubits: amps.len().trailing_zeros() as usize,
            amps,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The raw amplitudes.
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Probability of measuring the computational basis state `index`.
    pub fn probability_of(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Probability that qubit `q` reads 1.
    pub fn prob_one(&self, q: usize) -> f64 {
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn inner_product(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        let mut acc = Complex64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// `|⟨self|other⟩|²` — the fidelity between two pure states.
    pub fn fidelity_with(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Squared norm (1 for a valid state).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescales to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is (numerically) zero.
    pub fn renormalize(&mut self) {
        let norm = self.norm_sqr().sqrt();
        assert!(norm > 1e-300, "cannot normalize the zero vector");
        let inv = 1.0 / norm;
        for a in &mut self.amps {
            *a = a.scale(inv);
        }
    }

    /// Applies a single-qubit unitary `m` (row-major 2×2) to qubit `q`.
    pub fn apply_single(&mut self, q: usize, m: &[[Complex64; 2]; 2]) {
        let mask = 1usize << q;
        for base in 0..self.amps.len() {
            if base & mask == 0 {
                let other = base | mask;
                let a0 = self.amps[base];
                let a1 = self.amps[other];
                self.amps[base] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[other] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Applies a single-qubit unitary to qubit `target`, controlled on
    /// every qubit in `controls` being 1.
    pub fn apply_controlled(&mut self, controls: &[usize], target: usize, m: &[[Complex64; 2]; 2]) {
        let tmask = 1usize << target;
        let cmask: usize = controls.iter().map(|&c| 1usize << c).sum();
        for base in 0..self.amps.len() {
            if base & tmask == 0 && base & cmask == cmask {
                let other = base | tmask;
                let a0 = self.amps[base];
                let a1 = self.amps[other];
                self.amps[base] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[other] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Swaps qubits `a` and `b`.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        let amask = 1usize << a;
        let bmask = 1usize << b;
        for i in 0..self.amps.len() {
            let bit_a = (i & amask) != 0;
            let bit_b = (i & bmask) != 0;
            if bit_a && !bit_b {
                let j = (i & !amask) | bmask;
                self.amps.swap(i, j);
            }
        }
    }

    /// Multiplies the amplitude of every basis state where `q` is 1 by a
    /// phase (used by diagonal gates and dephasing).
    pub fn apply_phase_if_one(&mut self, q: usize, phase: Complex64) {
        let mask = 1usize << q;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & mask != 0 {
                *a *= phase;
            }
        }
    }

    /// Projectively measures qubit `q`, collapsing the state; returns
    /// the observed bit.
    pub fn measure_qubit(&mut self, q: usize, rng: &mut impl Rng) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.gen_bool(p1.clamp(0.0, 1.0));
        self.project(q, outcome);
        outcome
    }

    /// Projects qubit `q` onto `value` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics if the outcome has zero probability.
    pub fn project(&mut self, q: usize, value: bool) {
        let mask = 1usize << q;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if ((i & mask) != 0) != value {
                *a = Complex64::ZERO;
            }
        }
        self.renormalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn h_matrix() -> [[Complex64; 2]; 2] {
        let s = Complex64::from(std::f64::consts::FRAC_1_SQRT_2);
        [[s, s], [s, -s]]
    }

    fn x_matrix() -> [[Complex64; 2]; 2] {
        [
            [Complex64::ZERO, Complex64::ONE],
            [Complex64::ONE, Complex64::ZERO],
        ]
    }

    #[test]
    fn zero_state() {
        let s = StateVector::zero(3);
        assert_eq!(s.num_qubits(), 3);
        assert_eq!(s.probability_of(0), 1.0);
        assert_eq!(s.norm_sqr(), 1.0);
    }

    #[test]
    fn x_flips() {
        let mut s = StateVector::zero(2);
        s.apply_single(1, &x_matrix());
        assert!((s.probability_of(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_superposes() {
        let mut s = StateVector::zero(1);
        s.apply_single(0, &h_matrix());
        assert!((s.probability_of(0) - 0.5).abs() < 1e-12);
        assert!((s.probability_of(1) - 0.5).abs() < 1e-12);
        // H·H = I
        s.apply_single(0, &h_matrix());
        assert!((s.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn controlled_x_is_cnot() {
        let mut s = StateVector::zero(2);
        s.apply_single(0, &x_matrix()); // |01> (q0 = 1)
        s.apply_controlled(&[0], 1, &x_matrix()); // flips q1
        assert!((s.probability_of(0b11) - 1.0).abs() < 1e-12);
        // Control 0: no action.
        let mut s = StateVector::zero(2);
        s.apply_controlled(&[0], 1, &x_matrix());
        assert!((s.probability_of(0b00) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn toffoli_via_two_controls() {
        let mut s = StateVector::zero(3);
        s.apply_single(0, &x_matrix());
        s.apply_single(1, &x_matrix()); // |011>
        s.apply_controlled(&[0, 1], 2, &x_matrix());
        assert!((s.probability_of(0b111) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut s = StateVector::zero(2);
        s.apply_single(0, &x_matrix()); // |01>
        s.apply_swap(0, 1); // |10>
        assert!((s.probability_of(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_on_entangled_state() {
        // (|00> + |01>)/sqrt2, swap -> (|00> + |10>)/sqrt2
        let mut s = StateVector::zero(2);
        s.apply_single(0, &h_matrix());
        s.apply_swap(0, 1);
        assert!((s.probability_of(0b00) - 0.5).abs() < 1e-12);
        assert!((s.probability_of(0b10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prob_one_counts_correctly() {
        let mut s = StateVector::zero(2);
        s.apply_single(0, &h_matrix());
        assert!((s.prob_one(0) - 0.5).abs() < 1e-12);
        assert!(s.prob_one(1).abs() < 1e-12);
    }

    #[test]
    fn inner_product_orthogonal_and_self() {
        let z = StateVector::zero(2);
        let mut x = StateVector::zero(2);
        x.apply_single(0, &x_matrix());
        assert!(z.inner_product(&x).norm() < 1e-12);
        assert!((z.fidelity_with(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phase_if_one() {
        let mut s = StateVector::zero(1);
        s.apply_single(0, &h_matrix());
        s.apply_phase_if_one(0, -Complex64::ONE); // Z
        s.apply_single(0, &h_matrix()); // HZH = X
        assert!((s.probability_of(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_collapses() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = StateVector::zero(1);
        s.apply_single(0, &h_matrix());
        let outcome = s.measure_qubit(0, &mut rng);
        let expected = if outcome { 1 } else { 0 };
        assert!((s.probability_of(expected) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ones = 0;
        for _ in 0..1000 {
            let mut s = StateVector::zero(1);
            s.apply_single(0, &h_matrix());
            if s.measure_qubit(0, &mut rng) {
                ones += 1;
            }
        }
        assert!((400..600).contains(&ones), "got {ones}/1000 ones");
    }

    #[test]
    fn project_forces_outcome() {
        let mut s = StateVector::zero(1);
        s.apply_single(0, &h_matrix());
        s.project(0, true);
        assert!((s.probability_of(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn bad_amplitudes_panic() {
        StateVector::from_amplitudes(vec![Complex64::ONE, Complex64::ONE]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_length_panics() {
        StateVector::from_amplitudes(vec![Complex64::ONE; 3]);
    }
}
