//! Simulation backend selection and the unified differential runner.
//!
//! Three engines simulate circuits in this crate:
//!
//! * **dense** — the [`StateVector`] simulator, exact for every gate but
//!   capped at 26 qubits;
//! * **stabilizer** — the [`StabilizerState`] tableau, polynomial in
//!   qubit count but Clifford-only;
//! * **sparse** — the [`SparseState`] amplitude map, bit-identical to
//!   dense whenever both run, bounded by a nonzero budget instead of a
//!   qubit cap.
//!
//! [`Backend`] is the user-facing selector (`auto` classifies the
//! circuit per the rules below); [`SimBackend`] is the engine a circuit
//! actually resolved to. Auto-selection:
//!
//! 1. Clifford-only circuit → **stabilizer**;
//! 2. at most [`AUTO_SPARSE_MAX_NON_CLIFFORD`] non-Clifford gates →
//!    **sparse**;
//! 3. otherwise → **dense** (which requires ≤ 26 qubits).
//!
//! An explicitly requested backend never silently falls back: asking
//! for `stabilizer` on a T-heavy circuit is an error, not a dense run.

use crate::measure::sample_counts;
use crate::sparse::SparseState;
use crate::stabilizer::{is_clifford_kind, StabilizerState};
use crate::state::StateVector;
use codar_circuit::{Circuit, GateKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;

/// Dense state-vector qubit cap (see [`StateVector::zero`]).
pub const DENSE_MAX_QUBITS: usize = 26;

/// `auto` routes a circuit with at most this many non-Clifford gates to
/// the sparse backend before falling back to dense.
pub const AUTO_SPARSE_MAX_NON_CLIFFORD: usize = 16;

/// A user-facing simulation backend choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Classify each circuit and pick the cheapest capable engine.
    Auto,
    /// Always the dense state vector (≤ 26 qubits).
    Dense,
    /// Always the stabilizer tableau (Clifford circuits only).
    Stabilizer,
    /// Always the sparse amplitude map (bounded support only).
    Sparse,
}

impl Backend {
    /// Every selectable backend.
    pub const ALL: [Backend; 4] = [
        Backend::Auto,
        Backend::Dense,
        Backend::Stabilizer,
        Backend::Sparse,
    ];

    /// The CLI/protocol surface name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Auto => "auto",
            Backend::Dense => "dense",
            Backend::Stabilizer => "stabilizer",
            Backend::Sparse => "sparse",
        }
    }

    /// Parses a surface name (case-insensitive).
    pub fn parse(name: &str) -> Option<Backend> {
        match name.to_ascii_lowercase().as_str() {
            "auto" => Some(Backend::Auto),
            "dense" | "statevector" => Some(Backend::Dense),
            "stabilizer" | "clifford" => Some(Backend::Stabilizer),
            "sparse" => Some(Backend::Sparse),
            _ => None,
        }
    }

    /// Resolves the selection against a concrete circuit.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError`] when the selected engine cannot run the
    /// circuit (explicit selections never silently fall back).
    pub fn resolve(self, circuit: &Circuit) -> Result<SimBackend, BackendError> {
        let class = classify(circuit);
        match self {
            Backend::Dense => {
                if circuit.num_qubits() > DENSE_MAX_QUBITS {
                    Err(BackendError::TooManyQubits {
                        qubits: circuit.num_qubits(),
                        limit: DENSE_MAX_QUBITS,
                    })
                } else {
                    Ok(SimBackend::Dense)
                }
            }
            Backend::Stabilizer => match class.first_non_clifford {
                Some(kind) => Err(BackendError::NonClifford { kind }),
                None => Ok(SimBackend::Stabilizer),
            },
            Backend::Sparse => Ok(SimBackend::Sparse),
            Backend::Auto => {
                if class.non_clifford == 0 {
                    Ok(SimBackend::Stabilizer)
                } else if class.non_clifford <= AUTO_SPARSE_MAX_NON_CLIFFORD {
                    Ok(SimBackend::Sparse)
                } else if circuit.num_qubits() <= DENSE_MAX_QUBITS {
                    Ok(SimBackend::Dense)
                } else {
                    Err(BackendError::TooManyQubits {
                        qubits: circuit.num_qubits(),
                        limit: DENSE_MAX_QUBITS,
                    })
                }
            }
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The engine a circuit resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimBackend {
    /// The dense state vector.
    Dense,
    /// The stabilizer tableau.
    Stabilizer,
    /// The sparse amplitude map.
    Sparse,
}

impl SimBackend {
    /// The surface name (`"dense"` / `"stabilizer"` / `"sparse"`).
    pub fn name(self) -> &'static str {
        match self {
            SimBackend::Dense => "dense",
            SimBackend::Stabilizer => "stabilizer",
            SimBackend::Sparse => "sparse",
        }
    }
}

impl fmt::Display for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a backend could not run a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendError {
    /// The stabilizer backend met a non-Clifford gate.
    NonClifford {
        /// The offending gate kind.
        kind: GateKind,
    },
    /// The dense backend (or auto's dense fallback) exceeded its cap.
    TooManyQubits {
        /// Circuit width.
        qubits: usize,
        /// The dense cap.
        limit: usize,
    },
    /// The sparse backend outgrew its nonzero budget.
    BudgetExceeded {
        /// Support size the offending gate would have produced.
        nonzeros: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The stabilizer support is too large to enumerate for sampling.
    SupportTooLarge {
        /// The affine-subspace dimension.
        free: u32,
    },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::NonClifford { kind } => write!(
                f,
                "backend `stabilizer` cannot simulate non-Clifford gate `{}`",
                kind.name()
            ),
            BackendError::TooManyQubits { qubits, limit } => write!(
                f,
                "backend `dense` is capped at {limit} qubits, circuit has {qubits}"
            ),
            BackendError::BudgetExceeded { nonzeros, budget } => write!(
                f,
                "backend `sparse` exceeded its nonzero budget: {nonzeros} > {budget}"
            ),
            BackendError::SupportTooLarge { free } => write!(
                f,
                "stabilizer support too large to sample: 2^{free} members"
            ),
        }
    }
}

impl std::error::Error for BackendError {}

/// Gate census used by auto-selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// Total gates in the circuit.
    pub gates: usize,
    /// Non-Clifford gates (`T`, rotations, multi-controlled, …).
    pub non_clifford: usize,
    /// `Measure` + `Reset` operations.
    pub non_unitary: usize,
    /// Kind of the first non-Clifford gate, when any.
    pub first_non_clifford: Option<GateKind>,
}

/// Counts Clifford vs non-Clifford gates (kind-based: rotations count
/// as non-Clifford regardless of their angles).
pub fn classify(circuit: &Circuit) -> Classification {
    let mut non_clifford = 0;
    let mut non_unitary = 0;
    let mut first = None;
    for gate in circuit.gates() {
        if matches!(gate.kind, GateKind::Measure | GateKind::Reset) {
            non_unitary += 1;
        } else if !is_clifford_kind(gate.kind) {
            non_clifford += 1;
            if first.is_none() {
                first = Some(gate.kind);
            }
        }
    }
    Classification {
        gates: circuit.len(),
        non_clifford,
        non_unitary,
        first_non_clifford: first,
    }
}

/// Runs `circuit` under `backend` and samples `shots` whole-register
/// measurements, all randomness drawn from one generator seeded with
/// `seed` (gate-level measurements first, then sampling — the same
/// consumption order on every backend). Returns the resolved engine and
/// the counts keyed by 128-bit basis index.
///
/// # Errors
///
/// Returns [`BackendError`] when the selected backend cannot run or
/// sample the circuit.
pub fn run_counts(
    backend: Backend,
    circuit: &Circuit,
    shots: usize,
    seed: u64,
) -> Result<(SimBackend, BTreeMap<u128, usize>), BackendError> {
    let resolved = backend.resolve(circuit)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let counts = match resolved {
        SimBackend::Dense => {
            if circuit.num_qubits() > DENSE_MAX_QUBITS {
                return Err(BackendError::TooManyQubits {
                    qubits: circuit.num_qubits(),
                    limit: DENSE_MAX_QUBITS,
                });
            }
            let mut state = StateVector::zero(circuit.num_qubits());
            for gate in circuit.gates() {
                crate::gates::apply_gate(&mut state, gate, &mut rng);
            }
            sample_counts(&state, shots, &mut rng)
                .into_iter()
                .map(|(k, v)| (k as u128, v))
                .collect()
        }
        SimBackend::Stabilizer => {
            let mut state = StabilizerState::zero(circuit.num_qubits());
            state
                .apply_circuit(circuit, &mut rng)
                .map_err(|e| BackendError::NonClifford { kind: e.kind })?;
            state
                .sample_counts(shots, &mut rng)
                .map_err(|free| BackendError::SupportTooLarge { free })?
        }
        SimBackend::Sparse => {
            let mut state = SparseState::zero(circuit.num_qubits());
            state
                .apply_circuit(circuit, &mut rng)
                .map_err(|e| BackendError::BudgetExceeded {
                    nonzeros: e.nonzeros,
                    budget: e.budget,
                })?;
            state.sample_counts(shots, &mut rng)
        }
    };
    Ok((resolved, counts))
}

/// Drops `Measure`, `Reset` and `Barrier`, keeping the unitary skeleton
/// — the part differential equivalence checks compare. (Routers may
/// reorder commuting measurements, which would de-align seeded
/// measurement randomness between two equivalent circuits.)
pub fn strip_nonunitary(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_bits(circuit.num_qubits(), circuit.num_bits());
    for gate in circuit.gates() {
        if gate.kind.is_unitary() {
            out.push(gate.clone());
        }
    }
    out
}

/// Differentially checks that two circuits over the *same* qubits (an
/// original and the logical reconstruction of its routed form) prepare
/// the same state, under the engine `selected` resolves to for
/// `original`. Non-unitary operations are stripped from both sides
/// first. Returns the resolved engine on success.
///
/// * stabilizer — canonical-tableau equality (exact, any width);
/// * dense / sparse — state fidelity within `1e-9`.
///
/// # Errors
///
/// Returns a human-readable message when the backend cannot run the
/// circuits or the states disagree.
pub fn differential_check(
    original: &Circuit,
    candidate: &Circuit,
    selected: Backend,
    seed: u64,
) -> Result<SimBackend, String> {
    if original.num_qubits() != candidate.num_qubits() {
        return Err(format!(
            "qubit count mismatch: {} vs {}",
            original.num_qubits(),
            candidate.num_qubits()
        ));
    }
    let resolved = selected.resolve(original).map_err(|e| e.to_string())?;
    let a = strip_nonunitary(original);
    let b = strip_nonunitary(candidate);
    // The stripped circuits are unitary; the rng is never consumed but
    // keeps the apply signatures uniform.
    let mut rng = StdRng::seed_from_u64(seed);
    match resolved {
        SimBackend::Stabilizer => {
            let mut sa = StabilizerState::zero(a.num_qubits());
            sa.apply_circuit(&a, &mut rng).map_err(|e| e.to_string())?;
            let mut sb = StabilizerState::zero(b.num_qubits());
            sb.apply_circuit(&b, &mut rng).map_err(|e| e.to_string())?;
            if sa.equiv(&sb) {
                Ok(resolved)
            } else {
                Err("stabilizer tableaus of original and routed circuits differ".into())
            }
        }
        SimBackend::Dense => {
            if a.num_qubits() > DENSE_MAX_QUBITS {
                return Err(BackendError::TooManyQubits {
                    qubits: a.num_qubits(),
                    limit: DENSE_MAX_QUBITS,
                }
                .to_string());
            }
            let mut sa = StateVector::zero(a.num_qubits());
            for gate in a.gates() {
                crate::gates::apply_gate(&mut sa, gate, &mut rng);
            }
            let mut sb = StateVector::zero(b.num_qubits());
            for gate in b.gates() {
                crate::gates::apply_gate(&mut sb, gate, &mut rng);
            }
            let fidelity = sa.fidelity_with(&sb);
            if (fidelity - 1.0).abs() < 1e-9 {
                Ok(resolved)
            } else {
                Err(format!(
                    "dense fidelity between original and routed circuits is {fidelity:.12}"
                ))
            }
        }
        SimBackend::Sparse => {
            let mut sa = SparseState::zero(a.num_qubits());
            sa.apply_circuit(&a, &mut rng).map_err(|e| e.to_string())?;
            let mut sb = SparseState::zero(b.num_qubits());
            sb.apply_circuit(&b, &mut rng).map_err(|e| e.to_string())?;
            let fidelity = sa.fidelity_with(&sb);
            if (fidelity - 1.0).abs() < 1e-9 {
                Ok(resolved)
            } else {
                Err(format!(
                    "sparse fidelity between original and routed circuits is {fidelity:.12}"
                ))
            }
        }
    }
}

/// Whole-device routed-vs-original equivalence through the stabilizer
/// backend: simulates the original (embedded into the device register)
/// and the physical routed circuit, relabels the physical qubits back
/// through `logical_of` (the router's final physical→logical mapping),
/// and compares canonical tableaus. Scales to hundreds of qubits —
/// this is the check the dense simulator could never run.
///
/// Non-unitary operations are stripped from both circuits.
///
/// # Errors
///
/// Returns a message naming the first non-Clifford gate, a mapping
/// inconsistency, or the tableau mismatch.
pub fn check_routed_equivalence_stabilizer(
    original: &Circuit,
    physical: &Circuit,
    logical_of: &[Option<usize>],
) -> Result<(), String> {
    let n_phys = physical.num_qubits();
    if logical_of.len() != n_phys {
        return Err(format!(
            "mapping covers {} physical qubits, circuit has {n_phys}",
            logical_of.len()
        ));
    }
    let n_log = original.num_qubits();
    if n_log > n_phys {
        return Err(format!(
            "original uses {n_log} qubits but the device has {n_phys}"
        ));
    }
    let a = strip_nonunitary(original);
    let b = strip_nonunitary(physical);
    let mut rng = StdRng::seed_from_u64(0);
    // Original, embedded: unused device qubits stay |0⟩.
    let mut sa = StabilizerState::zero(n_phys);
    sa.apply_circuit(&a, &mut rng).map_err(|e| e.to_string())?;
    // Routed physical state, then physical→logical relabeling; qubits
    // holding no logical state fill the remaining slots (they must be
    // |0⟩ for the tableaus to match, exactly like the embedded side).
    let mut sb = StabilizerState::zero(n_phys);
    sb.apply_circuit(&b, &mut rng).map_err(|e| e.to_string())?;
    let mut perm = vec![usize::MAX; n_phys];
    let mut taken = vec![false; n_phys];
    for (phys, l) in logical_of.iter().enumerate() {
        if let Some(l) = *l {
            if l >= n_log || taken[l] {
                return Err(format!("invalid physical→logical mapping at qubit {phys}"));
            }
            perm[phys] = l;
            taken[l] = true;
        }
    }
    let mut next_free = n_log;
    for slot in &mut perm {
        if *slot == usize::MAX {
            *slot = next_free;
            next_free += 1;
        }
    }
    if next_free != n_phys {
        return Err("physical→logical mapping is not a partial bijection".into());
    }
    sb.permute_qubits(&perm);
    if sa.equiv(&sb) {
        Ok(())
    } else {
        Err("routed circuit does not prepare the original state (stabilizer check)".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for i in 0..n - 1 {
            c.cx(i, i + 1);
        }
        c
    }

    #[test]
    fn names_round_trip() {
        for backend in Backend::ALL {
            assert_eq!(Backend::parse(backend.name()), Some(backend));
        }
        assert_eq!(Backend::parse("STABILIZER"), Some(Backend::Stabilizer));
        assert_eq!(Backend::parse("gpu"), None);
        assert_eq!(Backend::parse(""), None);
    }

    #[test]
    fn auto_picks_stabilizer_for_clifford() {
        assert_eq!(
            Backend::Auto.resolve(&ghz(10)).unwrap(),
            SimBackend::Stabilizer
        );
    }

    #[test]
    fn auto_picks_sparse_for_few_t() {
        let mut c = ghz(10);
        c.t(3);
        c.t(7);
        assert_eq!(Backend::Auto.resolve(&c).unwrap(), SimBackend::Sparse);
    }

    #[test]
    fn auto_falls_back_to_dense_for_rotation_heavy() {
        let mut c = Circuit::new(4);
        for round in 0..5 {
            for q in 0..4 {
                c.ry(0.1 * (round * 4 + q) as f64 + 0.05, q);
            }
        }
        assert!(classify(&c).non_clifford > AUTO_SPARSE_MAX_NON_CLIFFORD);
        assert_eq!(Backend::Auto.resolve(&c).unwrap(), SimBackend::Dense);
    }

    #[test]
    fn explicit_stabilizer_never_falls_back() {
        let mut c = ghz(4);
        c.t(0);
        let err = Backend::Stabilizer.resolve(&c).unwrap_err();
        assert_eq!(err, BackendError::NonClifford { kind: GateKind::T });
        assert!(err.to_string().contains("non-Clifford"));
    }

    #[test]
    fn explicit_dense_rejects_wide_circuits() {
        let err = Backend::Dense.resolve(&ghz(30)).unwrap_err();
        assert!(matches!(
            err,
            BackendError::TooManyQubits { qubits: 30, .. }
        ));
    }

    #[test]
    fn classification_counts() {
        let mut c = ghz(3);
        c.t(0);
        c.measure(0, 0);
        let class = classify(&c);
        assert_eq!(class.gates, 5);
        assert_eq!(class.non_clifford, 1);
        assert_eq!(class.non_unitary, 1);
        assert_eq!(class.first_non_clifford, Some(GateKind::T));
    }

    #[test]
    fn run_counts_agree_across_backends_on_ghz() {
        let c = ghz(6);
        for seed in 0..8 {
            let (be_d, dense) = run_counts(Backend::Dense, &c, 100, seed).unwrap();
            let (be_st, stab) = run_counts(Backend::Stabilizer, &c, 100, seed).unwrap();
            let (be_sp, sparse) = run_counts(Backend::Sparse, &c, 100, seed).unwrap();
            assert_eq!(be_d, SimBackend::Dense);
            assert_eq!(be_st, SimBackend::Stabilizer);
            assert_eq!(be_sp, SimBackend::Sparse);
            assert_eq!(dense, stab, "dense vs stabilizer, seed {seed}");
            assert_eq!(dense, sparse, "dense vs sparse, seed {seed}");
        }
    }

    #[test]
    fn run_counts_scales_past_dense_on_stabilizer() {
        let c = ghz(100);
        let (resolved, counts) = run_counts(Backend::Auto, &c, 50, 1).unwrap();
        assert_eq!(resolved, SimBackend::Stabilizer);
        assert_eq!(counts.values().sum::<usize>(), 50);
        for &idx in counts.keys() {
            assert!(idx == 0 || idx == (1u128 << 100) - 1);
        }
    }

    #[test]
    fn differential_check_accepts_commuting_reorder() {
        let mut a = Circuit::new(3);
        a.h(0);
        a.cx(0, 1);
        a.cx(0, 2);
        let mut b = Circuit::new(3);
        b.h(0);
        b.cx(0, 2); // commutes with cx(0,1)
        b.cx(0, 1);
        assert_eq!(
            differential_check(&a, &b, Backend::Auto, 0).unwrap(),
            SimBackend::Stabilizer
        );
    }

    #[test]
    fn differential_check_rejects_differing_circuits() {
        let a = ghz(3);
        let mut b = ghz(3);
        b.z(1);
        assert!(differential_check(&a, &b, Backend::Auto, 0).is_err());
        assert!(differential_check(&a, &b, Backend::Dense, 0).is_err());
        assert!(differential_check(&a, &b, Backend::Sparse, 0).is_err());
    }

    #[test]
    fn routed_equivalence_through_a_swap() {
        // Original: cx(0,2) on 3 qubits. "Routed": swap(1,2); cx(0,1)
        // leaves logical 2 on physical 1.
        let mut original = Circuit::new(3);
        original.h(0);
        original.cx(0, 2);
        let mut physical = Circuit::new(3);
        physical.h(0);
        physical.swap(1, 2);
        physical.cx(0, 1);
        let logical_of = vec![Some(0), Some(2), Some(1)];
        check_routed_equivalence_stabilizer(&original, &physical, &logical_of).unwrap();
        // The same mapping with the wrong target must fail.
        let mut bad = Circuit::new(3);
        bad.h(0);
        bad.swap(1, 2);
        bad.cx(0, 2);
        assert!(check_routed_equivalence_stabilizer(&original, &bad, &logical_of).is_err());
    }
}
