//! Embedded OpenQASM benchmark sources.
//!
//! A handful of hand-written programs in the style of the public corpora
//! the paper draws from (IBM Qiskit examples, RevLib netlists, ScaffCC
//! output). They exercise the full frontend pipeline — parsing, gate
//! definitions, register broadcast — on realistic inputs.

use codar_circuit::from_qasm::circuit_from_source;
use codar_circuit::Circuit;
use codar_qasm::QasmError;

/// 3-qubit Toffoli test (RevLib `toffoli_double` style).
pub const TOFFOLI_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
x q[0];
x q[1];
ccx q[0], q[1], q[2];
measure q -> c;
"#;

/// 4-qubit QFT as emitted by ScaffCC-style compilers (explicit u1/cx
/// decomposition of the controlled phases).
pub const QFT4_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cu1(pi/2) q[1], q[0];
h q[1];
cu1(pi/4) q[2], q[0];
cu1(pi/2) q[2], q[1];
h q[2];
cu1(pi/8) q[3], q[0];
cu1(pi/4) q[3], q[1];
cu1(pi/2) q[3], q[2];
h q[3];
"#;

/// The paper's Fig. 1 motivating fragment (context impact).
pub const FIG1_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
t q[2];
cx q[0], q[3];
"#;

/// The paper's Fig. 2 motivating fragment (4-qubit QFT prefix;
/// duration impact).
pub const FIG2_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
t q[2];
cx q[0], q[2];
cx q[0], q[3];
"#;

/// A user-defined-gate workout: Cuccaro majority/unmajority adder cell
/// exactly as published (uses composite `gate` definitions).
pub const MAJ_ADDER_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
gate majority a,b,c
{
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
gate unmaj a,b,c
{
  ccx a,b,c;
  cx c,a;
  cx a,b;
}
qreg cin[1];
qreg a[4];
qreg b[4];
qreg cout[1];
creg ans[5];
x a[0];
x b;
majority cin[0],b[0],a[0];
majority a[0],b[1],a[1];
majority a[1],b[2],a[2];
majority a[2],b[3],a[3];
cx a[3],cout[0];
unmaj a[2],b[3],a[3];
unmaj a[1],b[2],a[2];
unmaj a[0],b[1],a[1];
unmaj cin[0],b[0],a[0];
measure b[0] -> ans[0];
measure b[1] -> ans[1];
measure b[2] -> ans[2];
measure b[3] -> ans[3];
measure cout[0] -> ans[4];
"#;

/// A GHZ-with-broadcast program (register-level operands).
pub const GHZ_BROADCAST_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
cx q[3], q[4];
barrier q;
measure q -> c;
"#;

/// All embedded sources with their names.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("toffoli", TOFFOLI_QASM),
        ("qft4", QFT4_QASM),
        ("paper_fig1", FIG1_QASM),
        ("paper_fig2", FIG2_QASM),
        ("maj_adder", MAJ_ADDER_QASM),
        ("ghz_broadcast", GHZ_BROADCAST_QASM),
    ]
}

/// Parses an embedded source into a circuit.
///
/// # Errors
///
/// Propagates frontend errors (none occur for the embedded sources —
/// see the tests).
pub fn load(source: &str) -> Result<Circuit, QasmError> {
    circuit_from_source(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_circuit::GateKind;

    #[test]
    fn every_embedded_source_parses() {
        for (name, src) in all() {
            let circuit = load(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!circuit.is_empty(), "{name} is empty");
        }
    }

    #[test]
    fn toffoli_counts() {
        let c = load(TOFFOLI_QASM).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.count_kind(GateKind::Ccx), 1);
        assert_eq!(c.count_kind(GateKind::Measure), 3);
    }

    #[test]
    fn qft4_structure() {
        let c = load(QFT4_QASM).unwrap();
        assert_eq!(c.count_kind(GateKind::H), 4);
        assert_eq!(c.count_kind(GateKind::Cu1), 6);
    }

    #[test]
    fn maj_adder_expands_composite_gates() {
        let c = load(MAJ_ADDER_QASM).unwrap();
        assert_eq!(c.num_qubits(), 10);
        // 8 majority/unmaj cells × 3 gates = 24, plus 1 cx, 5 x, 5 measure.
        assert_eq!(c.count_kind(GateKind::Ccx), 8);
        assert_eq!(c.count_kind(GateKind::Cx), 2 * 8 + 1);
        assert_eq!(c.count_kind(GateKind::X), 5);
    }

    #[test]
    fn ghz_broadcast_measures_whole_register() {
        let c = load(GHZ_BROADCAST_QASM).unwrap();
        assert_eq!(c.count_kind(GateKind::Measure), 5);
        assert_eq!(c.count_kind(GateKind::Barrier), 1);
    }

    #[test]
    fn fig_fragments_match_paper() {
        let fig1 = load(FIG1_QASM).unwrap();
        assert_eq!(fig1.len(), 2);
        let fig2 = load(FIG2_QASM).unwrap();
        assert_eq!(fig2.len(), 3);
    }
}
