//! Parameterised benchmark circuit generators.
//!
//! All generators are deterministic (random families take an explicit
//! seed), so every experiment in the repository is reproducible.

use codar_circuit::{Circuit, GateKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// `n`-qubit Quantum Fourier Transform (the ScaffCC-style ladder of
/// Hadamards and controlled phases; no terminal reversal swaps).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn qft(n: usize) -> Circuit {
    assert!(n > 0, "qft needs at least one qubit");
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.h(i);
        for j in i + 1..n {
            c.cu1(PI / (1u64 << (j - i)) as f64, j, i);
        }
    }
    c
}

/// Bernstein–Vazirani with an `n`-bit secret (bit `i` of `secret`) and
/// one ancilla (qubit `n`).
pub fn bernstein_vazirani(n: usize, secret: u64) -> Circuit {
    let mut c = Circuit::with_bits(n + 1, n);
    c.x(n);
    c.h(n);
    for i in 0..n {
        c.h(i);
    }
    for i in 0..n {
        if secret >> i & 1 == 1 {
            c.cx(i, n);
        }
    }
    for i in 0..n {
        c.h(i);
        c.measure(i, i);
    }
    c
}

/// `n`-qubit GHZ state preparation (H + CNOT chain).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ghz(n: usize) -> Circuit {
    assert!(n > 0, "ghz needs at least one qubit");
    let mut c = Circuit::new(n);
    c.h(0);
    for i in 1..n {
        c.cx(i - 1, i);
    }
    c
}

/// `n`-qubit GHZ ladder: the log-depth GHZ preparation. After the
/// seed Hadamard, every layer doubles the entangled frontier with a
/// wave of parallel CNOTs (`0→1`, then `0→2, 1→3`, …). Clifford-only
/// by construction — a stabilizer-backend workload that spreads
/// routing pressure across the whole device instead of down one
/// chain, which is what makes it a good whole-device-scale gate
/// circuit (127-qubit instances are still exactly simulable).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ghz_ladder(n: usize) -> Circuit {
    assert!(n > 0, "ghz ladder needs at least one qubit");
    let mut c = Circuit::new(n);
    c.h(0);
    let mut frontier = 1usize;
    while frontier < n {
        let spread = frontier.min(n - frontier);
        for i in 0..spread {
            c.cx(i, frontier + i);
        }
        frontier += spread;
    }
    c
}

/// Repetition-code syndrome-extraction cycles at `distance`:
/// `distance` data qubits (even indices) interleaved with
/// `distance - 1` syndrome ancillas (odd indices), the chain layout
/// heavy-hex devices route natively. Encodes a logical `|+⟩`, then
/// runs `rounds` Z-stabilizer extraction rounds (two CNOTs, measure,
/// reset per ancilla). Clifford-only, so arbitrarily large distances
/// stay exactly simulable on the stabilizer backend.
///
/// # Panics
///
/// Panics if `distance < 2`.
pub fn syndrome_cycle(distance: usize, rounds: usize) -> Circuit {
    assert!(distance >= 2, "syndrome cycle needs distance >= 2");
    let stabilizers = distance - 1;
    let mut c = Circuit::with_bits(2 * distance - 1, stabilizers * rounds.max(1));
    c.h(0);
    for i in 1..distance {
        c.cx(2 * (i - 1), 2 * i);
    }
    for round in 0..rounds {
        for s in 0..stabilizers {
            let anc = 2 * s + 1;
            c.cx(2 * s, anc);
            c.cx(2 * s + 2, anc);
            c.measure(anc, round * stabilizers + s);
            c.add(GateKind::Reset, vec![anc], vec![]);
        }
    }
    c
}

/// Cuccaro ripple-carry adder on two `n`-bit registers
/// (`2n + 2` qubits: carry-in, interleaved a/b, carry-out).
///
/// Uses the MAJ/UMA construction; contains Toffolis (decompose before
/// routing).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn cuccaro_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder needs at least one bit");
    let qubits = 2 * n + 2;
    let mut c = Circuit::new(qubits);
    // Layout: cin = 0, a_i = 1 + 2i, b_i = 2 + 2i, cout = 2n + 1.
    let a = |i: usize| 1 + 2 * i;
    let b = |i: usize| 2 + 2 * i;
    let cin = 0;
    let cout = qubits - 1;
    // Prepare a non-trivial input so simulation-based tests see carries.
    for i in 0..n {
        c.x(a(i));
        if i % 2 == 0 {
            c.x(b(i));
        }
    }
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };
    maj(&mut c, cin, b(0), a(0));
    for i in 1..n {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(n - 1), cout);
    for i in (1..n).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// Chain of `n - 2` Toffolis over `n` qubits (RevLib-style reversible
/// network shape).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn toffoli_chain(n: usize) -> Circuit {
    assert!(n >= 3, "toffoli chain needs at least 3 qubits");
    let mut c = Circuit::new(n);
    c.x(0);
    c.x(1);
    for i in 0..n - 2 {
        c.ccx(i, i + 1, i + 2);
    }
    c
}

/// Grover search over `n` data qubits marking the all-ones item, with
/// `iterations` rounds. The multi-controlled Z uses a ccx cascade with
/// `n - 2` ancillas (total `2n - 2` qubits for `n ≥ 3`; `n` otherwise).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn grover(n: usize, iterations: usize) -> Circuit {
    assert!(n >= 2, "grover needs at least 2 data qubits");
    let total = if n >= 3 { 2 * n - 2 } else { n };
    let mut c = Circuit::new(total);
    for q in 0..n {
        c.h(q);
    }
    let mcz = |c: &mut Circuit| {
        // Multi-controlled Z over qubits 0..n via H (on n-1) + MCX + H.
        c.h(n - 1);
        if n == 2 {
            c.cx(0, 1);
        } else {
            // cascade: ancillas at n..n + (n-2)
            let anc = |i: usize| n + i;
            c.ccx(0, 1, anc(0));
            for i in 2..n - 1 {
                c.ccx(i, anc(i - 2), anc(i - 1));
            }
            c.cx(anc(n - 3), n - 1);
            for i in (2..n - 1).rev() {
                c.ccx(i, anc(i - 2), anc(i - 1));
            }
            c.ccx(0, 1, anc(0));
        }
        c.h(n - 1);
    };
    for _ in 0..iterations {
        // Oracle: flip phase of |1...1>.
        mcz(&mut c);
        // Diffusion.
        for q in 0..n {
            c.h(q);
            c.x(q);
        }
        mcz(&mut c);
        for q in 0..n {
            c.x(q);
            c.h(q);
        }
    }
    c
}

/// Hidden-shift benchmark (Qiskit's benchmark family): H layer, a
/// bent-function phase pattern shifted by `shift`, another H layer.
pub fn hidden_shift(n: usize, shift: u64) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        if shift >> q & 1 == 1 {
            c.z(q);
        }
    }
    for q in (0..n).step_by(2) {
        if q + 1 < n {
            c.cz(q, q + 1);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    for q in (0..n).step_by(2) {
        if q + 1 < n {
            c.cz(q, q + 1);
        }
    }
    for q in 0..n {
        if shift >> q & 1 == 1 {
            c.z(q);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Transverse-field Ising / QAOA-style circuit: `layers` rounds of
/// nearest-neighbor + seeded random long-range `rzz` followed by `rx`.
pub fn ising_qaoa(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for layer in 0..layers {
        let gamma = 0.3 + 0.1 * layer as f64;
        for q in 0..n.saturating_sub(1) {
            c.rzz(gamma, q, q + 1);
        }
        // A few random long-range couplings stress the router.
        for _ in 0..n / 3 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                c.rzz(gamma, a, b);
            }
        }
        for q in 0..n {
            c.rx(0.7, q);
        }
    }
    c
}

/// Deutsch–Jozsa over `n` data qubits (+1 ancilla); `balanced` selects
/// the balanced oracle (CNOT fan-in) over the constant one.
pub fn deutsch_jozsa(n: usize, balanced: bool) -> Circuit {
    let mut c = Circuit::with_bits(n + 1, n);
    c.x(n);
    for q in 0..=n {
        c.h(q);
    }
    if balanced {
        for q in 0..n {
            c.cx(q, n);
        }
    }
    for q in 0..n {
        c.h(q);
        c.measure(q, q);
    }
    c
}

/// Seeded random Clifford+T circuit with `gates` operations over `n`
/// qubits (the SABRE-style "random" stress family).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_clifford_t(n: usize, gates: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "random circuits need at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        match rng.gen_range(0..10) {
            0 => c.h(rng.gen_range(0..n)),
            1 => c.t(rng.gen_range(0..n)),
            2 => c.tdg(rng.gen_range(0..n)),
            3 => c.s(rng.gen_range(0..n)),
            4 => c.x(rng.gen_range(0..n)),
            5 => c.rz(rng.gen::<f64>() * PI, rng.gen_range(0..n)),
            _ => {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.cx(a, b);
            }
        }
    }
    c
}

/// Quantum-volume-style model circuit: `depth` layers of random
/// permuted two-qubit blocks (each block = CX + parameterized 1q gates).
pub fn quantum_volume(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..depth {
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for pair in perm.chunks(2) {
            if let [a, b] = *pair {
                c.add(
                    GateKind::U3,
                    vec![a],
                    vec![
                        rng.gen::<f64>() * PI,
                        rng.gen::<f64>() * PI,
                        rng.gen::<f64>() * PI,
                    ],
                );
                c.add(
                    GateKind::U3,
                    vec![b],
                    vec![
                        rng.gen::<f64>() * PI,
                        rng.gen::<f64>() * PI,
                        rng.gen::<f64>() * PI,
                    ],
                );
                c.cx(a, b);
                c.add(
                    GateKind::U3,
                    vec![b],
                    vec![
                        rng.gen::<f64>() * PI,
                        rng.gen::<f64>() * PI,
                        rng.gen::<f64>() * PI,
                    ],
                );
            }
        }
    }
    c
}

/// A reversible ripple counter incrementing `rounds` times (RevLib-style
/// arithmetic shape built from X/CX/CCX cascades).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ripple_counter(n: usize, rounds: usize) -> Circuit {
    assert!(n >= 2, "counter needs at least 2 qubits");
    let mut c = Circuit::new(n);
    for _ in 0..rounds {
        // Increment: bit k flips when all lower bits are 1; realized
        // most-significant-first so carries read the pre-increment bits.
        for k in (1..n).rev() {
            match k {
                1 => c.cx(0, 1),
                2 => c.ccx(0, 1, 2),
                _ => {
                    // Approximate multi-control with a ccx ladder over
                    // the two highest relevant bits (keeps the circuit
                    // 3-qubit-gate bounded like RevLib's mapped netlists).
                    c.ccx(k - 2, k - 1, k);
                }
            }
        }
        c.x(0);
    }
    c
}

/// `n`-qubit W-state preparation (Cruz et al. construction: a cascade
/// of controlled-Ry "distribution" blocks followed by CNOTs).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn w_state(n: usize) -> Circuit {
    assert!(n > 0, "w state needs at least one qubit");
    let mut c = Circuit::new(n);
    c.x(0);
    for i in 0..n - 1 {
        // Controlled-Ry(θ) from qubit i to i+1 with
        // θ = 2·acos(sqrt(1/(n-i))): splits off 1/(n-i) of the
        // excitation amplitude. cry(θ) = cu3(θ, 0, 0).
        let theta = 2.0 * (1.0 / (n - i) as f64).sqrt().acos();
        c.add(GateKind::Cu3, vec![i, i + 1], vec![theta, 0.0, 0.0]);
        c.cx(i + 1, i);
    }
    c
}

/// Three-qubit bit-flip code: encode, `rounds` syndrome extractions
/// into two ancillas (measured each round), decode. 5 qubits total.
pub fn bit_flip_code(rounds: usize) -> Circuit {
    let mut c = Circuit::with_bits(5, 2 * rounds.max(1));
    // Prepare a non-trivial data state and encode it.
    c.ry(0.7, 0);
    c.cx(0, 1);
    c.cx(0, 2);
    for round in 0..rounds {
        // Syndrome extraction: Z0Z1 -> ancilla 3, Z1Z2 -> ancilla 4.
        c.cx(0, 3);
        c.cx(1, 3);
        c.cx(1, 4);
        c.cx(2, 4);
        c.measure(3, 2 * round);
        c.measure(4, 2 * round + 1);
        c.add(GateKind::Reset, vec![3], vec![]);
        c.add(GateKind::Reset, vec![4], vec![]);
    }
    // Decode.
    c.cx(0, 2);
    c.cx(0, 1);
    c
}

/// Iterative quantum phase estimation of a `u1(2π·phase)` eigenvalue
/// with `bits` counting qubits (+1 target). Controlled powers + inverse
/// QFT on the counting register.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn phase_estimation(bits: usize, phase: f64) -> Circuit {
    assert!(bits > 0, "phase estimation needs counting qubits");
    let n = bits + 1;
    let target = bits;
    let mut c = Circuit::with_bits(n, bits);
    c.x(target); // eigenstate |1> of u1
    for q in 0..bits {
        c.h(q);
    }
    for (q, _) in (0..bits).enumerate() {
        // Counting qubit q controls u1(2π·phase·2^q).
        let angle = 2.0 * PI * phase * (1u64 << q) as f64;
        c.cu1(angle, q, target);
    }
    // Inverse QFT on the counting register.
    for i in (0..bits).rev() {
        for j in (i + 1..bits).rev() {
            c.cu1(-PI / (1u64 << (j - i)) as f64, j, i);
        }
        c.h(i);
    }
    for q in 0..bits {
        c.measure(q, q);
    }
    c
}

/// Hardware-efficient VQE ansatz: `layers` of RY rotations and a CX
/// entangling ladder, seeded angles.
pub fn vqe_ansatz(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.ry(rng.gen::<f64>() * PI, q);
        }
        for q in 0..n.saturating_sub(1) {
            c.cx(q, q + 1);
        }
    }
    for q in 0..n {
        c.ry(rng.gen::<f64>() * PI, q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_circuit::decompose::decompose_three_qubit_gates;

    #[test]
    fn qft_gate_count() {
        // n H's + n(n-1)/2 controlled phases.
        let c = qft(5);
        assert_eq!(c.len(), 5 + 10);
        assert_eq!(c.count_kind(GateKind::H), 5);
        assert_eq!(c.count_kind(GateKind::Cu1), 10);
    }

    #[test]
    fn qft_is_unitary_sized() {
        assert_eq!(qft(1).len(), 1);
        assert_eq!(qft(2).len(), 3);
    }

    #[test]
    fn bv_encodes_secret() {
        let c = bernstein_vazirani(6, 0b101001);
        assert_eq!(c.count_kind(GateKind::Cx), 3);
        assert_eq!(c.num_qubits(), 7);
        assert_eq!(c.count_kind(GateKind::Measure), 6);
    }

    #[test]
    fn ghz_shape() {
        let c = ghz(8);
        assert_eq!(c.count_kind(GateKind::H), 1);
        assert_eq!(c.count_kind(GateKind::Cx), 7);
    }

    #[test]
    fn adder_uses_expected_registers() {
        let c = cuccaro_adder(4);
        assert_eq!(c.num_qubits(), 10);
        assert!(c.count_kind(GateKind::Ccx) == 2 * 4); // one MAJ + one UMA per bit
                                                       // Decomposable for routing.
        let d = decompose_three_qubit_gates(&c);
        assert!(d.gates().iter().all(|g| g.qubits.len() <= 2));
    }

    #[test]
    fn toffoli_chain_counts() {
        let c = toffoli_chain(6);
        assert_eq!(c.count_kind(GateKind::Ccx), 4);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_toffoli_chain_panics() {
        toffoli_chain(2);
    }

    #[test]
    fn grover_small_sizes() {
        let g2 = grover(2, 1);
        assert_eq!(g2.num_qubits(), 2);
        let g4 = grover(4, 2);
        assert_eq!(g4.num_qubits(), 6);
        assert!(g4.count_kind(GateKind::Ccx) > 0);
    }

    #[test]
    fn hidden_shift_is_h_sandwich() {
        let c = hidden_shift(6, 0b110100);
        assert_eq!(c.count_kind(GateKind::H), 18);
        assert!(c.count_kind(GateKind::Cz) > 0);
    }

    #[test]
    fn ising_deterministic() {
        let a = ising_qaoa(8, 2, 5);
        let b = ising_qaoa(8, 2, 5);
        assert_eq!(a.gates(), b.gates());
        assert!(a.count_kind(GateKind::Rzz) >= 2 * 7);
    }

    #[test]
    fn deutsch_jozsa_variants() {
        let balanced = deutsch_jozsa(5, true);
        let constant = deutsch_jozsa(5, false);
        assert!(balanced.count_kind(GateKind::Cx) == 5);
        assert!(constant.count_kind(GateKind::Cx) == 0);
    }

    #[test]
    fn random_circuit_is_seeded() {
        let a = random_clifford_t(6, 100, 9);
        let b = random_clifford_t(6, 100, 9);
        let c = random_clifford_t(6, 100, 10);
        assert_eq!(a.gates(), b.gates());
        assert_ne!(a.gates(), c.gates());
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn random_circuit_no_self_loops() {
        let c = random_clifford_t(4, 500, 3);
        for g in c.gates() {
            if g.qubits.len() == 2 {
                assert_ne!(g.qubits[0], g.qubits[1]);
            }
        }
    }

    #[test]
    fn quantum_volume_layers() {
        let c = quantum_volume(6, 4, 1);
        // 3 blocks per layer, 1 cx each.
        assert_eq!(c.count_kind(GateKind::Cx), 12);
    }

    #[test]
    fn counter_increments() {
        // Simulate 3 increments of a 3-bit counter: expect |011> (3).
        let c = ripple_counter(3, 3);
        let state = codar_sim_free::run(&c);
        assert!(state.0 == 3, "counter reads {}", state.0);
    }

    // A tiny classical simulator for X/CX/CCX-only circuits (enough to
    // check the counter without depending on codar-sim).
    mod codar_sim_free {
        use codar_circuit::{Circuit, GateKind};

        pub fn run(c: &Circuit) -> (u64,) {
            let mut bits = vec![false; c.num_qubits()];
            for g in c.gates() {
                match g.kind {
                    GateKind::X => bits[g.qubits[0]] ^= true,
                    GateKind::Cx => {
                        if bits[g.qubits[0]] {
                            bits[g.qubits[1]] ^= true;
                        }
                    }
                    GateKind::Ccx => {
                        if bits[g.qubits[0]] && bits[g.qubits[1]] {
                            bits[g.qubits[2]] ^= true;
                        }
                    }
                    other => panic!("unexpected {other} in classical circuit"),
                }
            }
            let mut v = 0u64;
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    v |= 1 << i;
                }
            }
            (v,)
        }
    }

    #[test]
    fn w_state_shape() {
        let c = w_state(5);
        assert_eq!(c.count_kind(GateKind::X), 1);
        assert_eq!(c.count_kind(GateKind::Cu3), 4);
        assert_eq!(c.count_kind(GateKind::Cx), 4);
    }

    #[test]
    fn ghz_ladder_doubles_the_frontier() {
        let c = ghz_ladder(127);
        assert_eq!(c.num_qubits(), 127);
        assert_eq!(c.count_kind(GateKind::H), 1);
        // Every qubit past the seed is entangled by exactly one CNOT.
        assert_eq!(c.count_kind(GateKind::Cx), 126);
        assert_eq!(c.len(), 127);
        // Clifford-only: nothing but H and CX.
        for g in c.gates() {
            assert!(matches!(g.kind, GateKind::H | GateKind::Cx), "{}", g.kind);
        }
        // The doubling schedule: targets of the first CNOT wave.
        assert_eq!(c.gates()[1].qubits, vec![0, 1]);
        assert_eq!(c.gates()[2].qubits, vec![0, 2]);
        assert_eq!(c.gates()[3].qubits, vec![1, 3]);
    }

    #[test]
    fn syndrome_cycle_shape() {
        let c = syndrome_cycle(5, 3);
        assert_eq!(c.num_qubits(), 9);
        // Encode 4 + 2 per stabilizer per round.
        assert_eq!(c.count_kind(GateKind::Cx), 4 + 2 * 4 * 3);
        assert_eq!(c.count_kind(GateKind::Measure), 4 * 3);
        assert_eq!(c.count_kind(GateKind::Reset), 4 * 3);
        // Clifford + measurement only: stabilizer-backend runnable at
        // any distance.
        for g in c.gates() {
            assert!(
                matches!(
                    g.kind,
                    GateKind::H | GateKind::Cx | GateKind::Measure | GateKind::Reset
                ),
                "{}",
                g.kind
            );
        }
    }

    #[test]
    fn bit_flip_code_rounds() {
        let c = bit_flip_code(3);
        assert_eq!(c.num_qubits(), 5);
        assert_eq!(c.count_kind(GateKind::Measure), 6);
        assert_eq!(c.count_kind(GateKind::Reset), 6);
        // encode 2 + decode 2 + 4 per round
        assert_eq!(c.count_kind(GateKind::Cx), 4 + 12);
    }

    #[test]
    fn phase_estimation_shape() {
        let c = phase_estimation(4, 0.3125);
        assert_eq!(c.num_qubits(), 5);
        assert_eq!(c.count_kind(GateKind::H), 4 + 4); // forward + inverse
        assert_eq!(c.count_kind(GateKind::Measure), 4);
        // 4 controlled powers + 6 inverse-QFT phases.
        assert_eq!(c.count_kind(GateKind::Cu1), 10);
    }

    #[test]
    fn vqe_ansatz_shape() {
        let c = vqe_ansatz(5, 3, 0);
        assert_eq!(c.count_kind(GateKind::Ry), 5 * 4);
        assert_eq!(c.count_kind(GateKind::Cx), 4 * 3);
    }
}
