//! Benchmark circuits for the CODAR evaluation.
//!
//! The paper collects 71 benchmarks from IBM Qiskit's GitHub, RevLib,
//! ScaffCC, Quipper and the SABRE suite (3–36 qubits, up to ~30k gates).
//! Those artifacts are external; this crate regenerates the same circuit
//! *families* deterministically:
//!
//! * [`generators`] — parameterised constructors (QFT, Bernstein–Vazirani,
//!   GHZ, Cuccaro adders, Grover, hidden shift, Ising/QAOA, reversible
//!   Toffoli networks, random Clifford+T, …),
//! * [`suite`] — the fixed 71-entry evaluation suite spanning the same
//!   size range as the paper's corpus,
//! * [`corpus`] — a small set of embedded OpenQASM sources exercising
//!   the full frontend pipeline.
//!
//! # Examples
//!
//! ```
//! let qft = codar_benchmarks::qft(5);
//! assert_eq!(qft.num_qubits(), 5);
//! let suite = codar_benchmarks::suite::full_suite();
//! assert_eq!(suite.len(), 71);
//! ```

pub mod corpus;
pub mod generators;
pub mod mix;
pub mod suite;

pub use generators::{
    bernstein_vazirani, bit_flip_code, cuccaro_adder, deutsch_jozsa, ghz, grover, hidden_shift,
    ising_qaoa, phase_estimation, qft, quantum_volume, random_clifford_t, ripple_counter,
    toffoli_chain, vqe_ansatz, w_state,
};
pub use mix::CircuitMix;
pub use suite::{full_suite, SuiteEntry};
