//! The fixed 71-entry evaluation suite.
//!
//! Mirrors the paper's corpus shape: 71 benchmarks, 3–36 qubits, drawn
//! from the same families (QFT/arithmetic from ScaffCC, reversible
//! networks from RevLib, algorithm kernels from Qiskit/Quipper, random
//! circuits from the SABRE set). Entries are sorted by qubit count, as
//! in Fig. 8 ("listed from left to right in ascending order of the
//! number of qubits used").

use crate::generators as g;
use codar_circuit::decompose::decompose_three_qubit_gates;
use codar_circuit::Circuit;

/// One suite entry: a named, deterministic benchmark circuit.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Human-readable benchmark name (family + size).
    pub name: String,
    /// Qubits used by the circuit.
    pub num_qubits: usize,
    /// The circuit, already decomposed to ≤ 2-qubit gates (router-ready).
    pub circuit: Circuit,
}

impl SuiteEntry {
    fn new(name: impl Into<String>, circuit: Circuit) -> Self {
        let circuit = decompose_three_qubit_gates(&circuit);
        SuiteEntry {
            name: name.into(),
            num_qubits: circuit.num_qubits(),
            circuit,
        }
    }
}

/// Builds the full 71-benchmark suite, sorted by qubit count.
///
/// Deterministic: every entry is generated from fixed parameters/seeds.
pub fn full_suite() -> Vec<SuiteEntry> {
    let mut entries = vec![
        // --- small algorithm kernels (3-6 qubits) ---------------------
        SuiteEntry::new("ghz_3", g::ghz(3)),
        SuiteEntry::new("toffoli_3", g::toffoli_chain(3)),
        SuiteEntry::new("qft_3", g::qft(3)),
        SuiteEntry::new("counter_3", g::ripple_counter(3, 4)),
        SuiteEntry::new("bv_3", g::bernstein_vazirani(3, 0b101)),
        SuiteEntry::new("qft_4", g::qft(4)),
        SuiteEntry::new("ghz_4", g::ghz(4)),
        SuiteEntry::new("toffoli_4", g::toffoli_chain(4)),
        SuiteEntry::new("hs_4", g::hidden_shift(4, 0b1010)),
        SuiteEntry::new("adder_1", g::cuccaro_adder(1)),
        SuiteEntry::new("qft_5", g::qft(5)),
        SuiteEntry::new("ghz_5", g::ghz(5)),
        SuiteEntry::new("counter_5", g::ripple_counter(5, 6)),
        SuiteEntry::new("bv_5", g::bernstein_vazirani(5, 0b11011)),
        SuiteEntry::new("vqe_5", g::vqe_ansatz(5, 4, 11)),
        SuiteEntry::new("qft_6", g::qft(6)),
        SuiteEntry::new("ising_6", g::ising_qaoa(6, 3, 21)),
        SuiteEntry::new("adder_2", g::cuccaro_adder(2)),
        SuiteEntry::new("toffoli_6", g::toffoli_chain(6)),
        SuiteEntry::new("grover_4", g::grover(4, 2)),
        SuiteEntry::new("hs_6", g::hidden_shift(6, 0b110110)),
        SuiteEntry::new("random_6", g::random_clifford_t(6, 150, 1)),
        // --- medium (7-12 qubits) --------------------------------------
        SuiteEntry::new("qft_7", g::qft(7)),
        SuiteEntry::new("bv_7", g::bernstein_vazirani(7, 0b1010101)),
        SuiteEntry::new("dj_7", g::deutsch_jozsa(7, true)),
        SuiteEntry::new("ghz_8", g::ghz(8)),
        SuiteEntry::new("qft_8", g::qft(8)),
        SuiteEntry::new("adder_3", g::cuccaro_adder(3)),
        SuiteEntry::new("hs_8", g::hidden_shift(8, 0b10110101)),
        SuiteEntry::new("ising_8", g::ising_qaoa(8, 4, 22)),
        SuiteEntry::new("vqe_8", g::vqe_ansatz(8, 5, 12)),
        SuiteEntry::new("random_8", g::random_clifford_t(8, 300, 2)),
        SuiteEntry::new("counter_8", g::ripple_counter(8, 10)),
        SuiteEntry::new("qft_9", g::qft(9)),
        SuiteEntry::new("toffoli_9", g::toffoli_chain(9)),
        SuiteEntry::new("ghz_10", g::ghz(10)),
        SuiteEntry::new("qft_10", g::qft(10)),
        SuiteEntry::new("bv_10", g::bernstein_vazirani(10, 0b1100110011)),
        SuiteEntry::new("adder_4", g::cuccaro_adder(4)),
        SuiteEntry::new("grover_6", g::grover(6, 1)),
        SuiteEntry::new("ising_10", g::ising_qaoa(10, 4, 23)),
        SuiteEntry::new("random_10", g::random_clifford_t(10, 500, 3)),
        SuiteEntry::new("hs_10", g::hidden_shift(10, 0b1011010110)),
        SuiteEntry::new("vqe_12", g::vqe_ansatz(12, 6, 13)),
        SuiteEntry::new("qft_12", g::qft(12)),
        SuiteEntry::new("qv_12", g::quantum_volume(12, 10, 32)),
        SuiteEntry::new("adder_5", g::cuccaro_adder(5)),
        SuiteEntry::new("random_12", g::random_clifford_t(12, 800, 4)),
        // --- large (13-16 qubits, the IBM Q16 ceiling) ------------------
        SuiteEntry::new("qft_13", g::qft(13)),
        SuiteEntry::new("ising_13", g::ising_qaoa(13, 5, 24)),
        SuiteEntry::new("counter_14", g::ripple_counter(14, 12)),
        SuiteEntry::new("bv_14", g::bernstein_vazirani(14, 0x2AAA)),
        SuiteEntry::new("adder_6", g::cuccaro_adder(6)),
        SuiteEntry::new("random_14", g::random_clifford_t(14, 1000, 5)),
        SuiteEntry::new("qft_15", g::qft(15)),
        SuiteEntry::new("ghz_16", g::ghz(16)),
        SuiteEntry::new("qft_16", g::qft(16)),
        SuiteEntry::new("vqe_16", g::vqe_ansatz(16, 8, 14)),
        SuiteEntry::new("qv_16", g::quantum_volume(16, 12, 33)),
        SuiteEntry::new("random_16", g::random_clifford_t(16, 1500, 6)),
        // --- 17-20 qubits (Q20 / 6x6 / Q54) -----------------------------
        SuiteEntry::new("ising_18", g::ising_qaoa(18, 5, 25)),
        SuiteEntry::new("adder_8", g::cuccaro_adder(8)),
        SuiteEntry::new("qft_20", g::qft(20)),
        SuiteEntry::new("random_20", g::random_clifford_t(20, 2500, 7)),
        SuiteEntry::new("vqe_20", g::vqe_ansatz(20, 10, 15)),
        // --- 21-36 qubits (the 36-qubit entries skip IBM Q16/Q20) -------
        SuiteEntry::new("ising_24", g::ising_qaoa(24, 6, 26)),
        SuiteEntry::new("adder_11", g::cuccaro_adder(11)),
        SuiteEntry::new("random_28", g::random_clifford_t(28, 6000, 8)),
        SuiteEntry::new("qft_36", g::qft(36)),
        SuiteEntry::new("ising_36", g::ising_qaoa(36, 8, 27)),
        // The paper's largest benchmarks reach ~30,000 gates.
        SuiteEntry::new("random_36", g::random_clifford_t(36, 15000, 9)),
    ];
    entries.sort_by_key(|e| (e.num_qubits, e.name.clone()));
    entries
}

/// The subset fitting a device with `max_qubits` physical qubits — the
/// paper tests 68 of 71 on the 16/20/36-qubit machines (excluding the
/// three 36-qubit programs) and all 71 on Sycamore.
pub fn suite_for_device(max_qubits: usize) -> Vec<SuiteEntry> {
    full_suite()
        .into_iter()
        .filter(|e| e.num_qubits <= max_qubits)
        .collect()
}

/// The seven "famous algorithm" circuits of the fidelity experiment
/// (Fig. 9): small enough to simulate, covering distinct structures.
pub fn fidelity_suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry::new("qft_5", g::qft(5)),
        SuiteEntry::new("ghz_6", g::ghz(6)),
        SuiteEntry::new("bv_6", g::bernstein_vazirani(6, 0b110101)),
        SuiteEntry::new("adder_2", g::cuccaro_adder(2)),
        SuiteEntry::new("grover_3", g::grover(3, 2)),
        SuiteEntry::new("hs_6", g::hidden_shift(6, 0b101101)),
        SuiteEntry::new("ising_6", g::ising_qaoa(6, 2, 28)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_71_entries() {
        assert_eq!(full_suite().len(), 71);
    }

    #[test]
    fn suite_spans_3_to_36_qubits() {
        let suite = full_suite();
        assert_eq!(suite.first().map(|e| e.num_qubits), Some(3));
        assert_eq!(suite.last().map(|e| e.num_qubits), Some(36));
    }

    #[test]
    fn suite_is_sorted_by_qubits() {
        let suite = full_suite();
        for w in suite.windows(2) {
            assert!(w[0].num_qubits <= w[1].num_qubits);
        }
    }

    #[test]
    fn names_are_unique() {
        let suite = full_suite();
        let names: std::collections::BTreeSet<&str> =
            suite.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn every_entry_is_router_ready() {
        for e in full_suite() {
            for gate in e.circuit.gates() {
                assert!(
                    gate.qubits.len() <= 2,
                    "{}: gate {gate} spans >2 qubits",
                    e.name
                );
            }
        }
    }

    #[test]
    fn device_filter_matches_paper_counts() {
        // All 71 fit Sycamore (54 qubits); the three 36-qubit programs
        // (qft_36, ising_36, random_36) are the largest, matching the
        // paper's "68 benchmarks out of the 71 except 3 36-qubit
        // programs".
        assert_eq!(suite_for_device(54).len(), 71);
        assert_eq!(suite_for_device(35).len(), 68);
        let thirty_six = full_suite().iter().filter(|e| e.num_qubits == 36).count();
        assert_eq!(thirty_six, 3);
    }

    #[test]
    fn fidelity_suite_is_seven_small_circuits() {
        let suite = fidelity_suite();
        assert_eq!(suite.len(), 7);
        for e in &suite {
            assert!(e.num_qubits <= 10, "{} too big to simulate", e.name);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let a = full_suite();
        let b = full_suite();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.circuit.gates(), y.circuit.gates());
        }
    }

    #[test]
    fn gate_counts_reach_paper_scale() {
        // Largest benchmarks should be in the thousands of gates
        // (paper: "about 30,000 gates").
        let max_gates = full_suite()
            .iter()
            .map(|e| e.circuit.len())
            .max()
            .unwrap_or(0);
        assert!(
            max_gates >= 5000,
            "largest benchmark only {max_gates} gates"
        );
    }
}
