//! Deterministic client workload mixes for the routing service.
//!
//! Real compilation services see heavily repeated inputs: users rerun
//! the same parameterised circuits, frameworks resubmit identical
//! kernels, CI replays fixed suites. [`CircuitMix`] models that as a
//! seeded infinite stream over a pool of benchmark circuits where each
//! draw is, with probability `repeat_ratio`, taken from a small **hot
//! set** (the first few pool entries) and otherwise drawn uniformly
//! from the whole pool. A result cache keyed by circuit content turns
//! the hot draws into O(1) lookups, which is exactly what `loadgen`
//! measures.
//!
//! Determinism: the stream depends only on `(pool, hot, repeat_ratio,
//! seed)` — two mixes built with the same arguments yield the same
//! sequence of entries forever.

use crate::suite::{full_suite, SuiteEntry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The default pool for service workloads: the suite entries small
/// enough that a single request routes in well under routing-suite
/// scale (at most `max_qubits` qubits), in suite order.
///
/// # Examples
///
/// ```
/// let pool = codar_benchmarks::mix::service_pool(10);
/// assert!(!pool.is_empty());
/// assert!(pool.iter().all(|e| e.num_qubits <= 10));
/// ```
pub fn service_pool(max_qubits: usize) -> Vec<SuiteEntry> {
    full_suite()
        .into_iter()
        .filter(|e| e.num_qubits <= max_qubits)
        .collect()
}

/// A seeded, infinite iterator over benchmark circuits with a
/// configurable repeat ratio (see the module docs).
///
/// # Examples
///
/// ```
/// use codar_benchmarks::mix::CircuitMix;
///
/// let names: Vec<String> = CircuitMix::new(7, 0.95)
///     .take(100)
///     .map(|e| e.name)
///     .collect();
/// let replay: Vec<String> = CircuitMix::new(7, 0.95)
///     .take(100)
///     .map(|e| e.name)
///     .collect();
/// assert_eq!(names, replay); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct CircuitMix {
    pool: Vec<SuiteEntry>,
    hot: usize,
    repeat_ratio: f64,
    rng: StdRng,
}

impl CircuitMix {
    /// Qubit bound of the default pool ([`service_pool`]).
    pub const DEFAULT_MAX_QUBITS: usize = 10;
    /// Hot-set size of the default mix.
    pub const DEFAULT_HOT: usize = 4;

    /// A mix over the default pool with a hot set of
    /// [`CircuitMix::DEFAULT_HOT`] circuits.
    ///
    /// `repeat_ratio` is clamped to `[0, 1]`; at `0.95` roughly 19 of
    /// 20 requests replay a hot circuit.
    pub fn new(seed: u64, repeat_ratio: f64) -> Self {
        CircuitMix::with_pool(
            service_pool(Self::DEFAULT_MAX_QUBITS),
            Self::DEFAULT_HOT,
            seed,
            repeat_ratio,
        )
    }

    /// A mix over an explicit pool. The first `hot` entries form the
    /// hot set (`hot` is clamped to the pool size).
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty.
    pub fn with_pool(pool: Vec<SuiteEntry>, hot: usize, seed: u64, repeat_ratio: f64) -> Self {
        assert!(!pool.is_empty(), "CircuitMix needs a non-empty pool");
        let hot = hot.clamp(1, pool.len());
        CircuitMix {
            pool,
            hot,
            repeat_ratio: repeat_ratio.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying pool, hot set first.
    pub fn pool(&self) -> &[SuiteEntry] {
        &self.pool
    }

    /// Size of the hot set.
    pub fn hot(&self) -> usize {
        self.hot
    }

    /// Index into [`CircuitMix::pool`] of the next draw.
    pub fn next_index(&mut self) -> usize {
        if self.rng.gen_bool(self.repeat_ratio) {
            self.rng.gen_range(0..self.hot)
        } else {
            self.rng.gen_range(0..self.pool.len())
        }
    }
}

impl Iterator for CircuitMix {
    type Item = SuiteEntry;

    /// Never `None`: the mix is an infinite replay stream.
    fn next(&mut self) -> Option<SuiteEntry> {
        let index = self.next_index();
        Some(self.pool[index].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pool_is_small_circuits_only() {
        let pool = service_pool(CircuitMix::DEFAULT_MAX_QUBITS);
        assert!(pool.len() >= 10, "pool too small: {}", pool.len());
        assert!(pool.iter().all(|e| e.num_qubits <= 10));
    }

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<usize> = {
            let mut mix = CircuitMix::new(42, 0.9);
            (0..200).map(|_| mix.next_index()).collect()
        };
        let b: Vec<usize> = {
            let mut mix = CircuitMix::new(42, 0.9);
            (0..200).map(|_| mix.next_index()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<usize> = {
            let mut mix = CircuitMix::new(43, 0.9);
            (0..200).map(|_| mix.next_index()).collect()
        };
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn high_repeat_ratio_concentrates_on_hot_set() {
        let mut mix = CircuitMix::new(1, 0.95);
        let hot = mix.hot();
        let draws: Vec<usize> = (0..1000).map(|_| mix.next_index()).collect();
        let hot_share = draws.iter().filter(|&&i| i < hot).count() as f64 / 1000.0;
        assert!(hot_share > 0.9, "hot share only {hot_share}");
    }

    #[test]
    fn zero_repeat_ratio_spreads_over_pool() {
        let mut mix = CircuitMix::new(2, 0.0);
        let pool_len = mix.pool().len();
        let mut seen = vec![false; pool_len];
        for _ in 0..2000 {
            seen[mix.next_index()] = true;
        }
        let covered = seen.iter().filter(|&&s| s).count();
        assert!(
            covered > pool_len / 2,
            "only {covered}/{pool_len} pool entries drawn"
        );
    }

    #[test]
    fn iterator_yields_pool_entries() {
        let mix = CircuitMix::new(3, 0.5);
        let names: std::collections::BTreeSet<String> =
            mix.pool().iter().map(|e| e.name.clone()).collect();
        for entry in CircuitMix::new(3, 0.5).take(50) {
            assert!(names.contains(&entry.name));
            assert!(!entry.circuit.is_empty());
        }
    }

    #[test]
    fn hot_is_clamped_to_pool() {
        let pool = service_pool(4);
        let n = pool.len();
        let mix = CircuitMix::with_pool(pool, 10_000, 0, 1.0);
        assert_eq!(mix.hot(), n);
    }
}
