//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! ships a minimal wall-clock benchmarking harness with criterion's
//! macro-level API: [`criterion_group!`], [`criterion_main!`],
//! [`Criterion::benchmark_group`], [`Criterion::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`] and
//! [`Bencher::iter`]. No statistics, plots or comparisons — each
//! benchmark runs `sample_size` timed iterations after one warm-up
//! iteration and prints mean/min time per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { criterion: self }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks (subset of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let sample_size = self.criterion.sample_size;
        run_one(&id.label, sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing only; kept for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark identifier (subset of `criterion::BenchmarkId`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    min: Duration,
    iters: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` (after one warm-up call).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.min = self.min.min(elapsed);
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        sample_size,
        total: Duration::ZERO,
        min: Duration::MAX,
        iters: 0,
    };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("  {label:<40} (no iterations)");
    } else {
        let mean = bencher.total / bencher.iters as u32;
        println!(
            "  {label:<40} mean {mean:>12?}  min {:>12?}  ({} iters)",
            bencher.min, bencher.iters
        );
    }
}

/// Declares a group of benchmark targets (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_iterations() {
        let mut counter = 0usize;
        let mut criterion = Criterion::default().sample_size(5);
        criterion.bench_function("count", |b| b.iter(|| counter += 1));
        // One warm-up + 5 timed iterations.
        assert_eq!(counter, 6);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut criterion = Criterion::default().sample_size(3);
        let mut group = criterion.benchmark_group("g");
        let input = vec![1, 2, 3];
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("sum", 3), &input, |b, input| {
            b.iter(|| {
                seen = input.iter().sum::<i32>();
            })
        });
        group.finish();
        assert_eq!(seen, 6);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("qft", 8).label, "qft/8");
        assert_eq!(
            BenchmarkId::from_parameter("full_codar").label,
            "full_codar"
        );
    }
}
