//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! ships a small property-testing harness exposing the subset of the
//! proptest API the reproduction uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   and float ranges, tuples, and regex-like string patterns,
//! * [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Cases are generated from a seed derived from the test name, so runs
//! are fully deterministic. There is **no shrinking**: a failing case
//! reports its inputs via the assertion message only.

#[doc(hidden)]
pub use rand;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Value generator (subset of `proptest::strategy::Strategy`).
    ///
    /// Unlike upstream, strategies here generate values directly from a
    /// [`StdRng`] with no intermediate value tree (hence no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// String patterns: a `&str` strategy interprets the string as a
    /// micro-regex (`.`, literal chars, `[class]`, and the quantifiers
    /// `*`, `+`, `?`, `{m}`, `{m,n}`) and generates matching strings.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    enum Atom {
        Any,
        Literal(char),
        Class(Vec<(char, char)>),
    }

    fn parse_atoms(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' && i + 1 < chars.len() {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = chars[i + 2];
                            ranges.push((lo, hi));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    i += 1; // closing ']'
                    Atom::Class(ranges)
                }
                '\\' if i + 1 < chars.len() => {
                    let c = unescape(chars[i + 1]);
                    i += 2;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Quantifier?
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '{' => {
                        let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                        if let Some(close) = close {
                            let spec: String = chars[i + 1..close].iter().collect();
                            i = close + 1;
                            if let Some((m, n)) = spec.split_once(',') {
                                (m.trim().parse().unwrap_or(0), n.trim().parse().unwrap_or(8))
                            } else {
                                let m = spec.trim().parse().unwrap_or(1);
                                (m, m)
                            }
                        } else {
                            (1, 1)
                        }
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            atoms.push((atom, min, max));
        }
        atoms
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    fn random_char(rng: &mut StdRng) -> char {
        // A deliberately nasty mix: mostly printable ASCII, with
        // whitespace, control bytes and arbitrary unicode sprinkled in
        // to exercise lexer totality.
        match rng.gen_range(0..10u8) {
            0..=6 => char::from(rng.gen_range(0x20u8..0x7f)),
            7 => *['\n', '\t', '\r', ' ']
                .get(rng.gen_range(0..4usize))
                .unwrap(),
            8 => char::from(rng.gen_range(0u8..0x20)),
            _ => char::from_u32(rng.gen_range(0u32..0x11_0000) as u32).unwrap_or('\u{fffd}'),
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in parse_atoms(pattern) {
            let count = rng.gen_range(min..=max);
            for _ in 0..count {
                match &atom {
                    Atom::Any => out.push(random_char(rng)),
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        if ranges.is_empty() {
                            continue;
                        }
                        let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                        let span = (hi as u32).saturating_sub(lo as u32);
                        let pick = lo as u32 + rng.gen_range(0..=span) as u32;
                        out.push(char::from_u32(pick).unwrap_or(lo));
                    }
                }
            }
        }
        out
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Collection size specifications: a fixed `usize` or a half-open
    /// `Range<usize>` (subset of `proptest::collection::SizeRange`).
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(
                r.start < r.end,
                "collection::vec: empty size range {}..{}",
                r.start,
                r.end
            );
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vec of values from `element` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; the case is not counted.
        Reject(String),
        /// `prop_assert!`-family failure; the property is falsified.
        Fail(String),
    }

    /// Deterministic per-test seed: FNV-1a over the test name.
    pub fn seed_for(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1_0000_0000_01b3);
        }
        hash
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests (subset of `proptest::proptest!`).
///
/// Each `#[test] fn name(pat in strategy, ...) { body }` expands to a
/// zero-argument test that draws inputs from the strategies and runs
/// the body up to `config.cases` times (rejected cases are retried
/// within a bounded budget).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_for(stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let budget = config.cases.saturating_mul(16).max(16);
            while passed < config.cases && attempts < budget {
                attempts += 1;
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        ::core::panic!(
                            "property `{}` falsified at case {}: {}",
                            stringify!($name),
                            passed,
                            message
                        );
                    }
                }
            }
            ::core::assert!(
                passed >= config.cases,
                "property `{}`: only {} of {} cases ran before the reject \
                 budget ({} attempts) was exhausted — loosen prop_assume! \
                 or lower the case count",
                stringify!($name),
                passed,
                config.cases,
                budget
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case unless `cond` holds (not counted as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.5f64..2.5, z in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!(z <= 4);
        }

        #[test]
        fn tuples_and_vecs(v in collection::vec((0usize..5, 0.0f64..1.0), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (i, f) in v {
                prop_assert!(i < 5);
                prop_assert!((0.0..1.0).contains(&f));
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_applies(s in (1usize..4).prop_map(|n| "ab".repeat(n))) {
            prop_assert!(s.len() % 2 == 0 && !s.is_empty());
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let pad = crate::strategy::Strategy::generate(&"[ \t\n]{0,4}", &mut rng);
            assert!(pad.len() <= 4);
            assert!(pad.chars().all(|c| c == ' ' || c == '\t' || c == '\n'));
        }
        // `.*` must produce at least some non-empty and some empty strings.
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&".*", &mut rng);
            lens.insert(s.chars().count());
        }
        assert!(lens.len() > 1);
    }
}
