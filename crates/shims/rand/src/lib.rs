//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a small deterministic replacement exposing exactly the API
//! surface the reproduction uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] (for `f64`/`u64`/`bool`), [`Rng::gen_range`] over
//! integer ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` is xoshiro256** seeded via SplitMix64 — high-quality,
//! stable across platforms, and intentionally *not* the upstream
//! algorithm (streams differ from real `rand`, which is fine: every
//! consumer in this repo only relies on determinism per seed).

pub mod rngs {
    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_raw(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        rngs::StdRng { s }
    }
}

/// Types producible by [`Rng::gen`] (subset of `rand::distributions::Standard`).
pub trait Standard: Sized {
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_raw()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_raw() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_raw() & 1 == 1
    }
}

/// Ranges acceptable to [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    type Output;
    fn sample_from(self, rng: &mut rngs::StdRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Through i128 so signed ranges with negative bounds
                // work (every supported type fits in i128).
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_raw() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = (rng.next_raw() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut rngs::StdRng) -> f64 {
        let unit = f64::sample(rng);
        let v = self.start + unit * (self.end - self.start);
        // Rounding can push `v` to `end` for very tight ranges; keep
        // the half-open contract.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    fn raw(&mut self) -> u64;

    /// Uniform value of type `T` (for `f64`: in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T;

    /// Uniform value in `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    fn raw(&mut self) -> u64 {
        self.next_raw()
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p.clamp(0.0, 1.0)
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::{rngs::StdRng, Rng};

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut StdRng);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
            let v = rng.gen_range(3..=4u8);
            assert!(v == 3 || v == 4);
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_handles_negative_signed_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut lows = 0;
        for _ in 0..200 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(-3i64..=-1);
            assert!((-3..=-1).contains(&w));
            if v < 0 {
                lows += 1;
            }
        }
        assert!(lows > 0, "negative half of the range must be reachable");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements should move something");
    }
}
