//! The calibration-aware routing acceptance gate, end to end through
//! the `alphasweep` binary:
//!
//! * stdout is byte-identical across thread counts and reruns
//!   (seed-stable),
//! * some `codar-cal` alpha achieves a mean-EPS **improvement** over
//!   duration-only CODAR on the drifted snapshot — the noise-adaptive
//!   variant must actually buy reliability, not just exist.

use std::process::{Command, Output};

fn run_sweep(threads: &str) -> Output {
    let output = Command::new(env!("CARGO_BIN_EXE_alphasweep"))
        .args(["--max-gates", "600", "--threads", threads])
        .output()
        .expect("spawn alphasweep");
    assert!(
        output.status.success(),
        "alphasweep exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

#[test]
fn sweep_is_seed_stable_and_improves_eps() {
    let one = run_sweep("1");
    let four = run_sweep("4");
    assert_eq!(
        one.stdout, four.stdout,
        "sweep table must be byte-identical across thread counts"
    );
    assert_eq!(
        one.stdout,
        run_sweep("1").stdout,
        "sweep table must be byte-identical across reruns"
    );

    let table = String::from_utf8(one.stdout).expect("UTF-8 table");
    // The default sweep (q20, seed 11, drift 2) must report a strictly
    // positive best-delta line; the exact value is pinned by the
    // byte-identity above, this parses it to keep the gate readable.
    let best = table
        .lines()
        .find(|l| l.starts_with("Best calibration-aware variant:"))
        .unwrap_or_else(|| panic!("no best-variant line in:\n{table}"));
    let delta: f64 = best
        .rsplit_once(", ")
        .and_then(|(_, tail)| tail.trim_end_matches(')').parse().ok())
        .unwrap_or_else(|| panic!("unparseable best line: {best}"));
    assert!(
        delta > 0.0,
        "calibration-aware routing must improve mean EPS over duration-only \
         CODAR on the drifted snapshot; got {delta} in: {best}"
    );
    // alpha=0 must sit exactly on the duration-only baseline (the
    // byte-identical reduction, visible in the table as delta +0).
    let alpha0 = table
        .lines()
        .find(|l| l.starts_with("alpha=0.00"))
        .expect("alpha=0.00 row");
    assert!(
        alpha0.contains("+0.000000"),
        "alpha=0 must match the codar baseline exactly: {alpha0}"
    );
}
