//! Golden-summary regression tests for the experiment binaries.
//!
//! Each test runs a binary twice — `--threads 1` and `--threads 3` —
//! and asserts that (a) stdout is byte-identical across thread counts
//! (the engine's determinism contract, end to end through the CLI),
//! and (b) stdout matches the committed golden file, so a router or
//! formatting regression can't slip through silently.
//!
//! Regenerate the fixtures after an intentional output change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p codar-bench --test golden
//! ```

use std::path::PathBuf;
use std::process::{Command, Output};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn run_bin(exe: &str, args: &[&str]) -> Output {
    let output = Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {exe}: {e}"));
    assert!(
        output.status.success(),
        "{exe} {args:?} exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

/// Runs `exe` with `args` at two thread counts; checks thread
/// invariance and the committed golden file.
fn check_golden(exe: &str, base_args: &[&str], golden: &str) {
    let mut one_args = base_args.to_vec();
    one_args.extend(["--threads", "1"]);
    let mut three_args = base_args.to_vec();
    three_args.extend(["--threads", "3"]);

    let one = run_bin(exe, &one_args);
    let three = run_bin(exe, &three_args);
    assert_eq!(
        String::from_utf8_lossy(&one.stdout),
        String::from_utf8_lossy(&three.stdout),
        "stdout must be byte-identical between --threads 1 and --threads 3"
    );

    let path = golden_path(golden);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &one.stdout).expect("write golden");
        return;
    }
    let expected = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with UPDATE_GOLDEN=1", golden));
    assert_eq!(
        String::from_utf8_lossy(&expected),
        String::from_utf8_lossy(&one.stdout),
        "{golden} drifted; if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn table1_summary_is_golden_and_thread_invariant() {
    check_golden(env!("CARGO_BIN_EXE_table1"), &[], "table1.txt");
}

#[test]
fn success_summary_is_golden_and_thread_invariant() {
    check_golden(
        env!("CARGO_BIN_EXE_success"),
        &["--max-gates", "150"],
        "success.txt",
    );
}

#[test]
fn fig9_summary_is_thread_invariant() {
    // No committed golden (trajectory simulation is the slowest of the
    // bins); the cross-thread fidelity byte-identity is the property
    // the paper pipeline depends on.
    let exe = env!("CARGO_BIN_EXE_fig9");
    let one = run_bin(exe, &["--trajectories", "5", "--threads", "1"]);
    let four = run_bin(exe, &["--trajectories", "5", "--threads", "4"]);
    assert_eq!(
        String::from_utf8_lossy(&one.stdout),
        String::from_utf8_lossy(&four.stdout),
        "fidelity summaries must not depend on the thread count"
    );
}

#[test]
fn malformed_cli_values_fail_loudly() {
    // The satellite regression: a malformed count must error out, not
    // silently fall back to a default measurement.
    for (exe, args) in [
        (env!("CARGO_BIN_EXE_fig9"), vec!["twohundred"]),
        (env!("CARGO_BIN_EXE_fig9"), vec!["--threads", "x"]),
        (env!("CARGO_BIN_EXE_success"), vec!["--max-gates", "many"]),
        (env!("CARGO_BIN_EXE_table1"), vec!["--threads", "-1"]),
        (env!("CARGO_BIN_EXE_mappings"), vec!["--bogus"]),
        (env!("CARGO_BIN_EXE_sweep"), vec!["--threads"]),
    ] {
        let output = Command::new(exe)
            .args(&args)
            .output()
            .unwrap_or_else(|e| panic!("cannot spawn {exe}: {e}"));
        assert!(
            !output.status.success(),
            "{exe} {args:?} must exit non-zero"
        );
        assert!(
            !output.stderr.is_empty(),
            "{exe} {args:?} must print an error"
        );
    }
}
