//! The portfolio routing acceptance gate, end to end through the
//! `portfolio` binary:
//!
//! * stdout is byte-identical across thread counts and reruns
//!   (seed-stable — the selection rule and its tie-break are pure
//!   functions of the printed configuration),
//! * the portfolio's mean EPS dominates **every** fixed member variant
//!   on the drifted snapshot (the binary itself fails the run
//!   otherwise; the test also re-checks the printed line),
//! * no single member sweeps every pick — the portfolio must be doing
//!   real per-circuit selection, not a constant fallback.

use std::process::{Command, Output};

fn run_portfolio(threads: &str) -> Output {
    let output = Command::new(env!("CARGO_BIN_EXE_portfolio"))
        .args(["--max-gates", "600", "--threads", threads])
        .output()
        .expect("spawn portfolio");
    assert!(
        output.status.success(),
        "portfolio exited with {:?}\nstderr:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

#[test]
fn portfolio_dominates_every_fixed_variant_deterministically() {
    let one = run_portfolio("1");
    let four = run_portfolio("4");
    assert_eq!(
        one.stdout, four.stdout,
        "portfolio table must be byte-identical across thread counts"
    );
    assert_eq!(
        one.stdout,
        run_portfolio("1").stdout,
        "portfolio table must be byte-identical across reruns"
    );

    let table = String::from_utf8(one.stdout).expect("UTF-8 table");
    // The binary enforces dominance internally (nonzero exit on
    // violation); the printed confirmation is the committed evidence.
    assert!(
        table.contains("Portfolio dominance: auto mean EPS"),
        "no dominance line in:\n{table}"
    );
    // Every fixed member's Δeps vs auto must be non-positive.
    for label in ["codar ", "codar-cal ", "greedy ", "sabre "] {
        let row = table
            .lines()
            .find(|l| l.starts_with(label))
            .unwrap_or_else(|| panic!("no `{label}` row in:\n{table}"));
        assert!(
            row.contains(" -0.") || row.contains(" +0.000000 "),
            "member must not beat the portfolio mean: {row}"
        );
    }
    // Real selection: the winner distribution names more than one
    // member (a portfolio that always picks the same router would be
    // indistinguishable from a fixed variant).
    let picks = table
        .lines()
        .find(|l| l.starts_with("Chosen-member distribution:"))
        .unwrap_or_else(|| panic!("no distribution line in:\n{table}"));
    let members = picks.trim_start_matches("Chosen-member distribution:");
    assert!(
        members.split(',').count() > 1,
        "portfolio degenerated to one constant pick: {picks}"
    );
}
