//! Component micro-benchmarks: the building blocks CODAR's inner loop
//! leans on (distance matrices, CF-set computation, QASM parsing,
//! ASAP scheduling).

use codar_arch::{CouplingGraph, DistanceMatrix, GateDurations};
use codar_benchmarks::generators;
use codar_circuit::schedule::Schedule;
use codar_router::front::{CommutativeFront, DEFAULT_WINDOW};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_distance_matrix(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_matrix");
    for &n in &[16usize, 36, 54, 100] {
        let side = (n as f64).sqrt().ceil() as usize;
        let graph = CouplingGraph::grid(side, side);
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| black_box(DistanceMatrix::new(graph)));
        });
    }
    group.finish();
}

fn bench_cf_computation(c: &mut Criterion) {
    // Rebuild the tracker per iteration: `cf_gates` now caches the
    // merged set, so a reused tracker would only measure the cache hit.
    let circuit = generators::qft(16);
    c.bench_function("cf_set_qft16", |b| {
        b.iter(|| {
            let mut front = CommutativeFront::new(&circuit, true, DEFAULT_WINDOW);
            black_box(front.cf_gates(&circuit).len())
        });
    });
    let random = generators::random_clifford_t(20, 1000, 3);
    c.bench_function("cf_set_random20x1000", |b| {
        b.iter(|| {
            let mut front = CommutativeFront::new(&random, true, DEFAULT_WINDOW);
            black_box(front.cf_gates(&random).len())
        });
    });
}

fn bench_qasm_parse(c: &mut Criterion) {
    let circuit = generators::qft(16);
    let qasm = codar_circuit::from_qasm::circuit_to_qasm(&circuit).expect("emittable");
    c.bench_function("qasm_parse_qft16", |b| {
        b.iter(|| black_box(codar_qasm::parse_and_flatten(&qasm).expect("parses")));
    });
}

fn bench_schedule(c: &mut Criterion) {
    let circuit = generators::random_clifford_t(20, 5000, 4);
    let tau = GateDurations::superconducting();
    c.bench_function("asap_schedule_5000", |b| {
        b.iter(|| black_box(Schedule::asap(&circuit, |g| tau.of(g))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_distance_matrix, bench_cf_computation, bench_qasm_parse, bench_schedule
}
criterion_main!(benches);
