//! Ablation benchmarks: routing runtime of CODAR with each mechanism
//! disabled (the *quality* impact is reported by the `sweep` binary;
//! here we measure that the mechanisms don't blow up compile time).

use codar_arch::Device;
use codar_bench::ablation_configs;
use codar_benchmarks::generators;
use codar_router::{CodarRouter, Mapping};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let device = Device::ibm_q20_tokyo();
    let circuit = generators::random_clifford_t(16, 600, 11);
    let initial = Mapping::identity(16, device.num_qubits());
    let mut group = c.benchmark_group("codar_ablation_runtime");
    for (name, config) in ablation_configs() {
        group.bench_with_input(
            BenchmarkId::from_parameter(name.replace(' ', "_")),
            &config,
            |b, config| {
                let router = CodarRouter::with_config(&device, config.clone());
                b.iter(|| {
                    black_box(
                        router
                            .route_with_mapping(&circuit, initial.clone())
                            .expect("fits"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
