//! Router runtime benchmarks: CODAR vs SABRE compile time as circuits
//! grow (the practical "is the heuristic fast enough" question).

use codar_arch::Device;
use codar_benchmarks::generators;
use codar_router::{CodarRouter, Mapping, SabreRouter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_routers(c: &mut Criterion) {
    let device = Device::ibm_q20_tokyo();
    let mut group = c.benchmark_group("routing");
    for &n in &[4usize, 8, 12, 16] {
        let circuit = generators::qft(n);
        let initial = Mapping::identity(n, device.num_qubits());
        group.bench_with_input(BenchmarkId::new("codar_qft", n), &circuit, |b, circuit| {
            let router = CodarRouter::new(&device);
            b.iter(|| {
                black_box(
                    router
                        .route_with_mapping(circuit, initial.clone())
                        .expect("qft fits"),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("sabre_qft", n), &circuit, |b, circuit| {
            let router = SabreRouter::new(&device);
            b.iter(|| {
                black_box(
                    router
                        .route_with_mapping(circuit, initial.clone())
                        .expect("qft fits"),
                )
            });
        });
    }
    for &gates in &[200usize, 800] {
        let circuit = generators::random_clifford_t(16, gates, 5);
        let initial = Mapping::identity(16, device.num_qubits());
        group.bench_with_input(
            BenchmarkId::new("codar_random16", gates),
            &circuit,
            |b, circuit| {
                let router = CodarRouter::new(&device);
                b.iter(|| {
                    black_box(
                        router
                            .route_with_mapping(circuit, initial.clone())
                            .expect("fits"),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sabre_random16", gates),
            &circuit,
            |b, circuit| {
                let router = SabreRouter::new(&device);
                b.iter(|| {
                    black_box(
                        router
                            .route_with_mapping(circuit, initial.clone())
                            .expect("fits"),
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_large_device(c: &mut Criterion) {
    let device = Device::google_sycamore54();
    let circuit = generators::ising_qaoa(36, 4, 7);
    let initial = Mapping::identity(36, device.num_qubits());
    c.bench_function("codar_sycamore_ising36", |b| {
        let router = CodarRouter::new(&device);
        b.iter(|| {
            black_box(
                router
                    .route_with_mapping(&circuit, initial.clone())
                    .expect("fits"),
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_routers, bench_large_device
}
criterion_main!(benches);
