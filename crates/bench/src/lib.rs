//! Experiment harness: the code behind every table and figure of the
//! paper (see DESIGN.md for the experiment index).
//!
//! Binaries:
//!
//! * `table1` — prints the Table I technology survey,
//! * `fig8` — CODAR-vs-SABRE weighted-depth speedups on the 71-benchmark
//!   suite across the four architectures,
//! * `fig9` — fidelity of the 7 famous algorithms under dephasing- and
//!   damping-dominant noise,
//! * `sweep` — ablation study over CODAR's three mechanisms.

use codar_arch::Device;
use codar_benchmarks::suite::SuiteEntry;
use codar_circuit::schedule::Time;
use codar_router::sabre::reverse_traversal_mapping;
use codar_router::{CodarConfig, CodarRouter, InitialMapping, RouteError, SabreRouter};
use codar_sim::{FidelityReport, NoiseModel};

/// One benchmark's CODAR-vs-SABRE comparison on one device.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub name: String,
    /// Qubits used by the benchmark.
    pub num_qubits: usize,
    /// Input gate count.
    pub gates: usize,
    /// CODAR weighted depth.
    pub codar_depth: Time,
    /// SABRE weighted depth.
    pub sabre_depth: Time,
    /// SWAPs inserted by CODAR.
    pub codar_swaps: usize,
    /// SWAPs inserted by SABRE.
    pub sabre_swaps: usize,
}

impl ComparisonRow {
    /// The Fig. 8 metric: SABRE weighted depth over CODAR weighted depth
    /// (> 1 means CODAR is faster).
    pub fn speedup(&self) -> f64 {
        if self.codar_depth == 0 {
            1.0
        } else {
            self.sabre_depth as f64 / self.codar_depth as f64
        }
    }
}

/// Routes one benchmark with both routers from the *same* initial
/// mapping (the paper's protocol) and reports the comparison.
///
/// # Errors
///
/// Propagates router errors (e.g. the benchmark does not fit).
pub fn compare_on(
    device: &Device,
    entry: &SuiteEntry,
    seed: u64,
) -> Result<ComparisonRow, RouteError> {
    let initial = reverse_traversal_mapping(&entry.circuit, device, seed);
    let codar = CodarRouter::new(device).route_with_mapping(&entry.circuit, initial.clone())?;
    let sabre = SabreRouter::new(device).route_with_mapping(&entry.circuit, initial)?;
    Ok(ComparisonRow {
        name: entry.name.clone(),
        num_qubits: entry.num_qubits,
        gates: entry.circuit.len(),
        codar_depth: codar.weighted_depth,
        sabre_depth: sabre.weighted_depth,
        codar_swaps: codar.swaps_inserted,
        sabre_swaps: sabre.swaps_inserted,
    })
}

/// One algorithm's fidelity comparison (Fig. 9).
#[derive(Debug, Clone)]
pub struct FidelityRow {
    /// Benchmark name.
    pub name: String,
    /// CODAR weighted depth.
    pub codar_depth: Time,
    /// SABRE weighted depth.
    pub sabre_depth: Time,
    /// CODAR circuit fidelity under the noise model.
    pub codar_fidelity: FidelityReport,
    /// SABRE circuit fidelity under the noise model.
    pub sabre_fidelity: FidelityReport,
}

/// Runs the Fig. 9 fidelity experiment for one algorithm on `device`
/// under `noise`.
///
/// # Errors
///
/// Propagates router errors.
pub fn fidelity_compare(
    device: &Device,
    entry: &SuiteEntry,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> Result<FidelityRow, RouteError> {
    let initial = reverse_traversal_mapping(&entry.circuit, device, seed);
    let codar = CodarRouter::new(device).route_with_mapping(&entry.circuit, initial.clone())?;
    let sabre = SabreRouter::new(device).route_with_mapping(&entry.circuit, initial)?;
    let tau = device.durations().clone();
    let codar_fidelity =
        FidelityReport::estimate(&codar.circuit, |g| tau.of(g), noise, trajectories, seed);
    let sabre_fidelity =
        FidelityReport::estimate(&sabre.circuit, |g| tau.of(g), noise, trajectories, seed);
    Ok(FidelityRow {
        name: entry.name.clone(),
        codar_depth: codar.weighted_depth,
        sabre_depth: sabre.weighted_depth,
        codar_fidelity,
        sabre_fidelity,
    })
}

/// The ablation configurations of the `sweep` binary.
pub fn ablation_configs() -> Vec<(&'static str, CodarConfig)> {
    let base = CodarConfig {
        initial_mapping: InitialMapping::Identity,
        ..CodarConfig::default()
    };
    vec![
        ("full codar", base.clone()),
        (
            "no duration awareness",
            CodarConfig {
                enable_duration_awareness: false,
                ..base.clone()
            },
        ),
        (
            "no commutativity",
            CodarConfig {
                enable_commutativity: false,
                ..base.clone()
            },
        ),
        (
            "no hfine",
            CodarConfig {
                enable_hfine: false,
                ..base
            },
        ),
    ]
}

/// Formats a ratio table row.
pub fn fmt_row(name: &str, cols: &[String]) -> String {
    let mut line = format!("{name:<24}");
    for c in cols {
        line.push_str(&format!("{c:>14}"));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_benchmarks::suite::fidelity_suite;

    #[test]
    fn compare_runs_and_is_valid() {
        let device = Device::ibm_q20_tokyo();
        let suite = codar_benchmarks::full_suite();
        let entry = suite.iter().find(|e| e.name == "qft_8").unwrap();
        let row = compare_on(&device, entry, 0).unwrap();
        assert!(row.codar_depth > 0);
        assert!(row.sabre_depth > 0);
        assert!(row.speedup() > 0.3 && row.speedup() < 5.0);
    }

    #[test]
    fn fidelity_compare_produces_probabilities() {
        let device = Device::ibm_q20_tokyo();
        let suite = fidelity_suite();
        let entry = &suite[1]; // ghz_6
        let row =
            fidelity_compare(&device, entry, &NoiseModel::dephasing_dominant(), 20, 0).unwrap();
        assert!(row.codar_fidelity.mean > 0.0 && row.codar_fidelity.mean <= 1.0 + 1e-9);
        assert!(row.sabre_fidelity.mean > 0.0 && row.sabre_fidelity.mean <= 1.0 + 1e-9);
    }

    #[test]
    fn ablation_configs_cover_all_mechanisms() {
        let configs = ablation_configs();
        assert_eq!(configs.len(), 4);
        assert!(configs.iter().any(|(_, c)| !c.enable_duration_awareness));
        assert!(configs.iter().any(|(_, c)| !c.enable_commutativity));
        assert!(configs.iter().any(|(_, c)| !c.enable_hfine));
    }
}
