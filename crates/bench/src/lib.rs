//! Experiment harness: the code behind every table and figure of the
//! paper (see ARCHITECTURE.md for the experiment index).
//!
//! Every binary drives the parallel [`codar_engine::SuiteRunner`]; this
//! crate holds what they share — comparison row types, ablation
//! configurations, strict CLI parsing ([`cli`]) and the stderr timing
//! report ([`report_timing`]).
//!
//! Binaries:
//!
//! * `engine` — general matrix runner; emits summaries and the
//!   `BENCH_timings.json` perf baseline,
//! * `table1` — the Table I technology survey plus a routed
//!   calibration workload on the modeled devices,
//! * `fig8` — CODAR-vs-SABRE weighted-depth speedups on the
//!   71-benchmark suite across the four architectures,
//! * `fig9` — fidelity of the 7 famous algorithms under dephasing- and
//!   damping-dominant noise,
//! * `success` — analytic success probabilities over the whole suite,
//! * `sweep` — ablation study over CODAR's three mechanisms on the
//!   full device catalog,
//! * `mappings` — initial-mapping strategy study.
//!
//! # Examples
//!
//! ```
//! use codar_arch::Device;
//! use codar_bench::compare_on;
//! use codar_benchmarks::suite::full_suite;
//!
//! let suite = full_suite();
//! let entry = suite.iter().find(|e| e.name == "qft_8").unwrap();
//! let row = compare_on(&Device::ibm_q20_tokyo(), entry, 0).unwrap();
//! assert!(row.speedup() > 0.0);
//! ```

use codar_arch::Device;
use codar_benchmarks::suite::SuiteEntry;
use codar_circuit::schedule::Time;
use codar_router::sabre::reverse_traversal_mapping;
use codar_router::{CodarConfig, CodarRouter, InitialMapping, RouteError, SabreRouter};
use codar_sim::{FidelityReport, NoiseModel};

/// One benchmark's CODAR-vs-SABRE comparison on one device.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub name: String,
    /// Qubits used by the benchmark.
    pub num_qubits: usize,
    /// Input gate count.
    pub gates: usize,
    /// CODAR weighted depth.
    pub codar_depth: Time,
    /// SABRE weighted depth.
    pub sabre_depth: Time,
    /// SWAPs inserted by CODAR.
    pub codar_swaps: usize,
    /// SWAPs inserted by SABRE.
    pub sabre_swaps: usize,
}

impl ComparisonRow {
    /// The Fig. 8 metric: SABRE weighted depth over CODAR weighted depth
    /// (> 1 means CODAR is faster).
    pub fn speedup(&self) -> f64 {
        if self.codar_depth == 0 {
            1.0
        } else {
            self.sabre_depth as f64 / self.codar_depth as f64
        }
    }
}

/// Routes one benchmark with both routers from the *same* initial
/// mapping (the paper's protocol) and reports the comparison.
///
/// # Errors
///
/// Propagates router errors (e.g. the benchmark does not fit).
pub fn compare_on(
    device: &Device,
    entry: &SuiteEntry,
    seed: u64,
) -> Result<ComparisonRow, RouteError> {
    let initial = reverse_traversal_mapping(&entry.circuit, device, seed);
    let codar = CodarRouter::new(device).route_with_mapping(&entry.circuit, initial.clone())?;
    let sabre = SabreRouter::new(device).route_with_mapping(&entry.circuit, initial)?;
    Ok(ComparisonRow {
        name: entry.name.clone(),
        num_qubits: entry.num_qubits,
        gates: entry.circuit.len(),
        codar_depth: codar.weighted_depth,
        sabre_depth: sabre.weighted_depth,
        codar_swaps: codar.swaps_inserted,
        sabre_swaps: sabre.swaps_inserted,
    })
}

/// One algorithm's fidelity comparison (Fig. 9).
#[derive(Debug, Clone)]
pub struct FidelityRow {
    /// Benchmark name.
    pub name: String,
    /// CODAR weighted depth.
    pub codar_depth: Time,
    /// SABRE weighted depth.
    pub sabre_depth: Time,
    /// CODAR circuit fidelity under the noise model.
    pub codar_fidelity: FidelityReport,
    /// SABRE circuit fidelity under the noise model.
    pub sabre_fidelity: FidelityReport,
}

/// Runs the Fig. 9 fidelity experiment for one algorithm on `device`
/// under `noise`.
///
/// # Errors
///
/// Propagates router errors.
pub fn fidelity_compare(
    device: &Device,
    entry: &SuiteEntry,
    noise: &NoiseModel,
    trajectories: usize,
    seed: u64,
) -> Result<FidelityRow, RouteError> {
    let initial = reverse_traversal_mapping(&entry.circuit, device, seed);
    let codar = CodarRouter::new(device).route_with_mapping(&entry.circuit, initial.clone())?;
    let sabre = SabreRouter::new(device).route_with_mapping(&entry.circuit, initial)?;
    let tau = device.durations().clone();
    let codar_fidelity =
        FidelityReport::estimate(&codar.circuit, |g| tau.of(g), noise, trajectories, seed);
    let sabre_fidelity =
        FidelityReport::estimate(&sabre.circuit, |g| tau.of(g), noise, trajectories, seed);
    Ok(FidelityRow {
        name: entry.name.clone(),
        codar_depth: codar.weighted_depth,
        sabre_depth: sabre.weighted_depth,
        codar_fidelity,
        sabre_fidelity,
    })
}

/// Strict CLI argument parsing shared by every experiment binary.
///
/// The old binaries silently fell back to defaults on malformed
/// values (`fig9 twohundred` quietly ran 200 trajectories); these
/// helpers make every malformed flag a hard error so a typo can never
/// masquerade as a measurement.
pub mod cli {
    use std::fmt::Display;
    use std::str::FromStr;

    /// Parses the value following the flag at `args[i]`.
    ///
    /// # Errors
    ///
    /// Errors when the value is missing or does not parse as `T` —
    /// never falls back to a default.
    pub fn flag_value<T: FromStr>(args: &[String], i: usize, flag: &str) -> Result<T, String>
    where
        T::Err: Display,
    {
        let raw = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        raw.parse()
            .map_err(|e| format!("{flag}: invalid value `{raw}`: {e}"))
    }

    /// Parses a bare positional value (same strictness as
    /// [`flag_value`]).
    ///
    /// # Errors
    ///
    /// Errors when the value does not parse as `T`.
    pub fn positional<T: FromStr>(raw: &str, what: &str) -> Result<T, String>
    where
        T::Err: Display,
    {
        raw.parse()
            .map_err(|e| format!("invalid {what} `{raw}`: {e}"))
    }
}

/// Maps each suite entry's name to its position, for re-sorting the
/// engine's (alphabetical) deterministic rows back into suite order —
/// the paper lists benchmarks by ascending qubit count.
pub fn suite_order(entries: &[SuiteEntry]) -> std::collections::HashMap<String, usize> {
    entries
        .iter()
        .enumerate()
        .map(|(i, e)| (e.name.clone(), i))
        .collect()
}

/// Prints an engine run's wall-clock statistics to **stderr**, keeping
/// stdout byte-identical across thread counts (the golden tests diff
/// stdout directly).
pub fn report_timing(stats: &codar_engine::RunStats) {
    eprintln!(
        "[{} jobs on {} threads in {:.2?}; {:.1} circuits/sec; pool speedup {:.2}x]",
        stats.jobs,
        stats.threads,
        stats.wall,
        stats.circuits_per_sec(),
        stats.pool_speedup(),
    );
    for t in &stats.per_router {
        eprintln!(
            "[  {:<20} {:>5} jobs, total {:.2?}, mean {:.2?}]",
            t.router,
            t.jobs,
            t.total,
            t.mean()
        );
    }
}

/// Errors when any job failed to route or any routed circuit failed
/// verification — so CI runs of the binaries catch router regressions.
/// Every failure's circuit, device and cause go to stderr first, so a
/// red run is diagnosable from its log.
///
/// # Errors
///
/// Returns a human-readable description of the failure counts.
pub fn check_health(result: &codar_engine::SuiteResult) -> Result<(), String> {
    for failure in &result.failures {
        eprintln!(
            "job {} failed: {} on {}: {}",
            failure.job.id, failure.circuit, failure.device, failure.error
        );
    }
    if !result.failures.is_empty() {
        return Err(format!("{} routing jobs failed", result.failures.len()));
    }
    let unverified = result
        .summary
        .rows
        .iter()
        .filter(|r| r.verified == Some(false))
        .count();
    if unverified > 0 {
        return Err(format!("{unverified} routed circuits failed verification"));
    }
    Ok(())
}

/// The ablation configurations of the `sweep` binary.
pub fn ablation_configs() -> Vec<(&'static str, CodarConfig)> {
    let base = CodarConfig {
        initial_mapping: InitialMapping::Identity,
        ..CodarConfig::default()
    };
    vec![
        ("full codar", base.clone()),
        (
            "no duration awareness",
            CodarConfig {
                enable_duration_awareness: false,
                ..base.clone()
            },
        ),
        (
            "no commutativity",
            CodarConfig {
                enable_commutativity: false,
                ..base.clone()
            },
        ),
        (
            "no hfine",
            CodarConfig {
                enable_hfine: false,
                ..base
            },
        ),
    ]
}

/// Formats a ratio table row.
pub fn fmt_row(name: &str, cols: &[String]) -> String {
    let mut line = format!("{name:<24}");
    for c in cols {
        line.push_str(&format!("{c:>14}"));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_benchmarks::suite::fidelity_suite;

    #[test]
    fn compare_runs_and_is_valid() {
        let device = Device::ibm_q20_tokyo();
        let suite = codar_benchmarks::full_suite();
        let entry = suite.iter().find(|e| e.name == "qft_8").unwrap();
        let row = compare_on(&device, entry, 0).unwrap();
        assert!(row.codar_depth > 0);
        assert!(row.sabre_depth > 0);
        assert!(row.speedup() > 0.3 && row.speedup() < 5.0);
    }

    #[test]
    fn fidelity_compare_produces_probabilities() {
        let device = Device::ibm_q20_tokyo();
        let suite = fidelity_suite();
        let entry = &suite[1]; // ghz_6
        let row =
            fidelity_compare(&device, entry, &NoiseModel::dephasing_dominant(), 20, 0).unwrap();
        assert!(row.codar_fidelity.mean > 0.0 && row.codar_fidelity.mean <= 1.0 + 1e-9);
        assert!(row.sabre_fidelity.mean > 0.0 && row.sabre_fidelity.mean <= 1.0 + 1e-9);
    }

    #[test]
    fn ablation_configs_cover_all_mechanisms() {
        let configs = ablation_configs();
        assert_eq!(configs.len(), 4);
        assert!(configs.iter().any(|(_, c)| !c.enable_duration_awareness));
        assert!(configs.iter().any(|(_, c)| !c.enable_commutativity));
        assert!(configs.iter().any(|(_, c)| !c.enable_hfine));
    }
}
