//! Regenerates Table I: parameter information of several quantum
//! computing devices.

use codar_arch::TechnologyParams;

fn fmt_opt(x: Option<f64>, unit: &str) -> String {
    match x {
        Some(v) if v >= 1000.0 => format!("{:.1} µs", v / 1000.0),
        Some(v) => format!("{v:.0} {unit}"),
        None => "-".to_string(),
    }
}

fn main() {
    println!("Table I: Parameter information of several quantum computing devices\n");
    println!(
        "{:<14}{:<16}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}{:>10}",
        "device", "technology", "1q fid", "2q fid", "readout", "t(1q)", "t(2q)", "T1", "T2"
    );
    for p in TechnologyParams::table1() {
        println!(
            "{:<14}{:<16}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}{:>10}",
            p.device,
            p.technology.to_string(),
            format!("{:.3}%", p.fidelity_1q * 100.0),
            format!("{:.2}%", p.fidelity_2q * 100.0),
            p.fidelity_readout
                .map(|r| format!("{:.1}%", r * 100.0))
                .unwrap_or_else(|| "-".to_string()),
            fmt_opt(p.time_1q_ns, "ns"),
            fmt_opt(p.time_2q_ns, "ns"),
            p.t1_us
                .map(|v| format!("{v:.0} µs"))
                .unwrap_or_else(|| "~inf".to_string()),
            p.t2_us
                .map(|v| format!("{v:.0} µs"))
                .unwrap_or_else(|| "-".to_string()),
        );
    }
    println!(
        "\nDerived duration ratios (2q/1q): {}",
        TechnologyParams::table1()
            .iter()
            .filter_map(|p| p
                .duration_ratio()
                .map(|r| format!("{} {:.1}x", p.device, r)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("The CODAR evaluation profile (superconducting): 1q = 1 cycle, 2q = 2 cycles, SWAP = 6 cycles.");
}
