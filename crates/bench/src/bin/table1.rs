//! Regenerates Table I: parameter information of several quantum
//! computing devices — and routes a small calibration workload on the
//! devices the reproduction models, so the static survey is backed by
//! measured weighted depths.
//!
//! Usage: `table1 [--threads N] [--seed S] [--no-route]`
//!
//! The calibration section runs on the [`codar_engine::SuiteRunner`]
//! pool; stdout is byte-identical for any `--threads` value.

use codar_arch::{Device, TechnologyParams};
use codar_bench::{check_health, cli, report_timing};
use codar_benchmarks::full_suite;
use codar_engine::{EngineConfig, SuiteRunner};
use std::process::ExitCode;

const USAGE: &str = "usage: table1 [--threads N] [--seed S] [--no-route]";

struct Args {
    threads: usize,
    seed: u64,
    route: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        threads: 0,
        seed: 0,
        route: true,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                parsed.threads = cli::flag_value(args, i, "--threads")?;
                i += 2;
            }
            "--seed" => {
                parsed.seed = cli::flag_value(args, i, "--seed")?;
                i += 2;
            }
            "--no-route" => {
                parsed.route = false;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn fmt_opt(x: Option<f64>, unit: &str) -> String {
    match x {
        Some(v) if v >= 1000.0 => format!("{:.1} µs", v / 1000.0),
        Some(v) => format!("{v:.0} {unit}"),
        None => "-".to_string(),
    }
}

fn print_survey() {
    println!("Table I: Parameter information of several quantum computing devices\n");
    println!(
        "{:<14}{:<16}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}{:>10}",
        "device", "technology", "1q fid", "2q fid", "readout", "t(1q)", "t(2q)", "T1", "T2"
    );
    for p in TechnologyParams::table1() {
        println!(
            "{:<14}{:<16}{:>12}{:>12}{:>12}{:>12}{:>12}{:>10}{:>10}",
            p.device,
            p.technology.to_string(),
            format!("{:.3}%", p.fidelity_1q * 100.0),
            format!("{:.2}%", p.fidelity_2q * 100.0),
            p.fidelity_readout
                .map(|r| format!("{:.1}%", r * 100.0))
                .unwrap_or_else(|| "-".to_string()),
            fmt_opt(p.time_1q_ns, "ns"),
            fmt_opt(p.time_2q_ns, "ns"),
            p.t1_us
                .map(|v| format!("{v:.0} µs"))
                .unwrap_or_else(|| "~inf".to_string()),
            p.t2_us
                .map(|v| format!("{v:.0} µs"))
                .unwrap_or_else(|| "-".to_string()),
        );
    }
    println!(
        "\nDerived duration ratios (2q/1q): {}",
        TechnologyParams::table1()
            .iter()
            .filter_map(|p| p
                .duration_ratio()
                .map(|r| format!("{} {:.1}x", p.device, r)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("The CODAR evaluation profile (superconducting): 1q = 1 cycle, 2q = 2 cycles, SWAP = 6 cycles.");
}

/// Table-I devices the reproduction has coupling-graph models for.
fn modeled_devices() -> Vec<Device> {
    vec![
        Device::ion_trap_all_to_all(5),
        Device::ion_trap_all_to_all(11),
        Device::ibm_q5_yorktown(),
        Device::ibm_q16_melbourne(),
        Device::ibm_q20_tokyo(),
    ]
}

fn route_calibration(args: &Args) -> Result<(), String> {
    let mut suite = full_suite();
    // A small fixed calibration set: every circuit fits at least the
    // 5-qubit devices or exercises the larger IBM machines.
    suite.retain(|e| e.num_qubits <= 16 && e.circuit.len() <= 250);
    let devices = modeled_devices();
    println!(
        "\nCalibration workload: CODAR vs SABRE on the modeled Table-I devices \
         ({} benchmarks, <= 250 gates)\n",
        suite.len()
    );

    let result = SuiteRunner::new(EngineConfig {
        threads: args.threads,
        seed: args.seed,
        ..EngineConfig::default()
    })
    .devices(devices.iter().cloned())
    .entries(suite)
    .run();

    println!(
        "{:<16}{:>8}{:>12}{:>16}{:>16}{:>14}",
        "device", "cells", "mean spdup", "codar mean WD", "sabre mean WD", "codar swaps"
    );
    for device in &devices {
        let cells: Vec<_> = result
            .summary
            .comparisons
            .iter()
            .filter(|c| c.device == device.name())
            .collect();
        if cells.is_empty() {
            continue;
        }
        let n = cells.len() as f64;
        let mean_speedup = cells.iter().map(|c| c.speedup()).sum::<f64>() / n;
        let codar_wd = cells.iter().map(|c| c.codar_depth as f64).sum::<f64>() / n;
        let sabre_wd = cells.iter().map(|c| c.sabre_depth as f64).sum::<f64>() / n;
        let codar_swaps: usize = result
            .summary
            .rows
            .iter()
            .filter(|r| r.device == device.name() && r.variant == "codar")
            .map(|r| r.swaps)
            .sum();
        println!(
            "{:<16}{:>8}{:>12.3}{:>16.1}{:>16.1}{:>14}",
            device.name(),
            cells.len(),
            mean_speedup,
            codar_wd,
            sabre_wd,
            codar_swaps
        );
    }
    println!(
        "\nAll-to-all ion traps need no SWAPs — any residual speedup there is pure\n\
         duration-aware scheduling; the sparser the superconducting coupling\n\
         graph, the more CODAR's routing wins on top of it."
    );
    report_timing(&result.stats);
    check_health(&result)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(args) => {
            print_survey();
            if args.route {
                if let Err(message) = route_calibration(&args) {
                    eprintln!("{message}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
