//! Ablation sweep: how much each CODAR mechanism (duration awareness,
//! commutativity detection, Hfine) contributes to the weighted-depth
//! win, quantifying Sec. IV's design choices.
//!
//! Usage: `cargo run -p codar-bench --release --bin sweep [--quick]`

use codar_arch::Device;
use codar_bench::ablation_configs;
use codar_benchmarks::full_suite;
use codar_router::sabre::reverse_traversal_mapping;
use codar_router::CodarRouter;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut suite = full_suite();
    suite.retain(|e| e.circuit.len() < if quick { 800 } else { 5000 });
    let device = Device::ibm_q20_tokyo();
    let configs = ablation_configs();

    println!(
        "Ablation sweep on {} ({} benchmarks)\n",
        device.name(),
        suite
            .iter()
            .filter(|e| e.num_qubits <= device.num_qubits())
            .count()
    );
    let mut header = format!("{:<14}", "benchmark");
    for (name, _) in &configs {
        header.push_str(&format!("{name:>22}"));
    }
    println!("{header}");

    let mut totals = vec![0.0f64; configs.len()];
    let mut counted = 0usize;
    for entry in suite.iter().filter(|e| e.num_qubits <= device.num_qubits()) {
        let initial = reverse_traversal_mapping(&entry.circuit, &device, 0);
        let mut row = format!("{:<14}", entry.name);
        let mut depths = Vec::new();
        for (_, config) in &configs {
            let routed = CodarRouter::with_config(&device, config.clone())
                .route_with_mapping(&entry.circuit, initial.clone())
                .expect("suite circuits fit the device");
            depths.push(routed.weighted_depth);
            row.push_str(&format!("{:>22}", routed.weighted_depth));
        }
        println!("{row}");
        let full = depths[0] as f64;
        if full > 0.0 {
            for (i, &d) in depths.iter().enumerate() {
                totals[i] += d as f64 / full;
            }
            counted += 1;
        }
    }
    println!("\nAverage weighted depth relative to full CODAR (lower is better):");
    for (i, (name, _)) in configs.iter().enumerate() {
        println!("  {:<24} {:.3}", name, totals[i] / counted.max(1) as f64);
    }
}
