//! Ablation sweep: how much each CODAR mechanism (duration awareness,
//! commutativity detection, Hfine) contributes to the weighted-depth
//! win, quantifying Sec. IV's design choices — now across the **full
//! device catalog** (IBM Q5/Q16/Q20, Enfield 6×6, Sycamore-54,
//! Bristlecone-72, Falcon-27, Aspen-16) in one parallel run.
//!
//! Usage: `sweep [--quick | --full] [--threads N] [--devices a,b,..]`
//!
//! `--quick` restricts to benchmarks below 800 gates, the default
//! below 2000, `--full` below 5000. All (benchmark × device × ablation
//! config) cells are one [`codar_engine::SuiteRunner`] matrix; stdout
//! is byte-identical for any `--threads` value.

use codar_arch::Device;
use codar_bench::{ablation_configs, check_health, cli, report_timing, suite_order};
use codar_benchmarks::full_suite;
use codar_engine::{EngineConfig, RouterVariant, SuiteRunner};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "usage: sweep [--quick | --full] [--threads N] [--devices a,b,..]";

struct Args {
    max_gates: usize,
    threads: usize,
    devices: Vec<Device>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        max_gates: 2000,
        threads: 0,
        devices: Device::presets().into_iter().map(|(_, d)| d).collect(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                parsed.max_gates = 800;
                i += 1;
            }
            "--full" => {
                parsed.max_gates = 5000;
                i += 1;
            }
            "--threads" => {
                parsed.threads = cli::flag_value(args, i, "--threads")?;
                i += 2;
            }
            "--devices" => {
                let names: String = cli::flag_value(args, i, "--devices")?;
                parsed.devices = names
                    .split(',')
                    .map(|name| {
                        Device::by_name(name.trim())
                            .ok_or_else(|| format!("unknown device `{name}`"))
                    })
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn run(args: &Args) -> Result<(), String> {
    let mut suite = full_suite();
    suite.retain(|e| e.circuit.len() < args.max_gates);
    let order = suite_order(&suite);
    let configs = ablation_configs();
    println!(
        "Ablation sweep over {} devices ({} benchmarks below {} gates)\n",
        args.devices.len(),
        suite.len(),
        args.max_gates
    );

    let result = SuiteRunner::new(EngineConfig {
        threads: args.threads,
        ..EngineConfig::default()
    })
    .devices(args.devices.iter().cloned())
    .entries(suite)
    .variants(
        configs
            .iter()
            .map(|(name, config)| RouterVariant::codar(*name, config.clone())),
    )
    .run();

    // (device, circuit, variant) -> weighted depth, deterministic rows.
    let mut depth: HashMap<(&str, &str, &str), u64> = HashMap::new();
    for row in &result.summary.rows {
        depth.insert(
            (&row.device, &row.circuit, &row.variant),
            row.weighted_depth,
        );
    }

    let mut grand_totals = vec![0.0f64; configs.len()];
    let mut grand_counted = 0usize;
    for device in &args.devices {
        let mut circuits: Vec<&str> = result
            .summary
            .rows
            .iter()
            .filter(|r| r.device == device.name())
            .map(|r| r.circuit.as_str())
            .collect();
        circuits.sort_by_key(|name| order.get(*name).copied().unwrap_or(usize::MAX));
        circuits.dedup();
        if circuits.is_empty() {
            println!("=== {} === (no benchmarks fit)\n", device.name());
            continue;
        }
        println!("=== {} ({} benchmarks) ===", device.name(), circuits.len());
        let mut header = format!("{:<14}", "benchmark");
        for (name, _) in &configs {
            header.push_str(&format!("{name:>22}"));
        }
        println!("{header}");

        let mut totals = vec![0.0f64; configs.len()];
        let mut counted = 0usize;
        for circuit in circuits {
            let mut row = format!("{circuit:<14}");
            let mut depths = Vec::new();
            for (name, _) in &configs {
                let d = depth.get(&(device.name(), circuit, *name)).copied();
                depths.push(d);
                match d {
                    Some(d) => row.push_str(&format!("{d:>22}")),
                    None => row.push_str(&format!("{:>22}", "-")),
                }
            }
            println!("{row}");
            // A missing cell means that variant's job failed; ratios
            // against it would be meaningless, so the circuit is
            // excluded from the averages (check_health still fails
            // the run afterwards).
            let Some(depths): Option<Vec<u64>> = depths.into_iter().collect() else {
                continue;
            };
            let full = depths[0] as f64;
            if full > 0.0 {
                for (i, &d) in depths.iter().enumerate() {
                    totals[i] += d as f64 / full;
                    grand_totals[i] += d as f64 / full;
                }
                counted += 1;
                grand_counted += 1;
            }
        }
        let mut line = format!("{:<14}", "rel. average");
        for total in &totals {
            line.push_str(&format!("{:>22.3}", total / counted.max(1) as f64));
        }
        println!("{line}\n");
    }
    println!("Average weighted depth relative to full CODAR, all devices (lower is better):");
    for (i, (name, _)) in configs.iter().enumerate() {
        println!(
            "  {:<24} {:.3}",
            name,
            grand_totals[i] / grand_counted.max(1) as f64
        );
    }
    report_timing(&result.stats);
    check_health(&result)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
