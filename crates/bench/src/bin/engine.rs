//! `engine` — run the parallel suite-routing engine over the benchmark
//! suite and emit the deterministic summary.
//!
//! ```text
//! engine [--devices q16,q20] [--routers codar,sabre] [--threads N]
//!        [--seed S] [--limit K] [--sim auto|dense|stabilizer|sparse]
//!        [--json PATH] [--csv PATH] [--timings PATH] [--no-verify]
//!        [--check-determinism]
//! ```
//!
//! `--check-determinism` runs the same matrix once on 1 thread and
//! once on N threads, asserts the two summaries are byte-identical,
//! and reports the measured wall-clock speedup.
//!
//! `--sim BACKEND` adds the simulation differential check to every
//! job: the routed circuit must reproduce the original's state on the
//! selected backend (`auto` picks stabilizer for Clifford circuits,
//! sparse for few-T ones, dense otherwise). Summary rows report the
//! backend that ran on every non-dense job; a failed check fails the
//! job, so the gates below apply.
//!
//! `--timings PATH` writes the run's [`codar_engine::RunStats`] as
//! JSON — the `BENCH_timings.json` perf baseline (circuits/sec, mean
//! route time per router, pool speedup; plus, under
//! `--check-determinism`, the measured speedup vs 1 thread and the
//! contention-free `per_router_1_thread` means the perf gate reads).
//!
//! All output files are gated on run health: if any job fails to
//! route or verify, the binary exits non-zero **before** writing
//! `--json`/`--csv`/`--timings`, so a broken run can never become the
//! committed baseline.

use codar_arch::Device;
use codar_bench::check_health;
use codar_benchmarks::suite::full_suite;
use codar_engine::{Backend, EngineConfig, RouterKind, RunStats, SuiteResult, SuiteRunner};
use std::process::ExitCode;

struct Args {
    devices: Vec<Device>,
    routers: Vec<RouterKind>,
    threads: usize,
    seed: u64,
    limit: usize,
    json: Option<String>,
    csv: Option<String>,
    timings: Option<String>,
    sim: Option<Backend>,
    verify: bool,
    check_determinism: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        devices: vec![Device::ibm_q16_melbourne(), Device::ibm_q20_tokyo()],
        routers: vec![RouterKind::Codar, RouterKind::Sabre],
        threads: 0,
        seed: 0,
        limit: usize::MAX,
        json: None,
        csv: None,
        timings: None,
        sim: None,
        verify: true,
        check_determinism: false,
    };
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--devices" => {
                let names = value(args, i, "--devices")?;
                parsed.devices = names
                    .split(',')
                    .map(|name| {
                        Device::by_name(name.trim())
                            .ok_or_else(|| format!("unknown device `{name}`"))
                    })
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            "--routers" => {
                let names = value(args, i, "--routers")?;
                parsed.routers = names
                    .split(',')
                    .map(|name| {
                        RouterKind::parse(name.trim())
                            .ok_or_else(|| format!("unknown router `{name}`"))
                    })
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            "--threads" => {
                parsed.threads = value(args, i, "--threads")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
                i += 2;
            }
            "--seed" => {
                parsed.seed = value(args, i, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
                i += 2;
            }
            "--limit" => {
                parsed.limit = value(args, i, "--limit")?
                    .parse()
                    .map_err(|e| format!("bad limit: {e}"))?;
                i += 2;
            }
            "--json" => {
                parsed.json = Some(value(args, i, "--json")?);
                i += 2;
            }
            "--csv" => {
                parsed.csv = Some(value(args, i, "--csv")?);
                i += 2;
            }
            "--timings" => {
                parsed.timings = Some(value(args, i, "--timings")?);
                i += 2;
            }
            "--sim" => {
                let name = value(args, i, "--sim")?;
                parsed.sim = Some(
                    Backend::parse(&name)
                        .ok_or_else(|| format!("unknown simulation backend `{name}`"))?,
                );
                i += 2;
            }
            "--no-verify" => {
                parsed.verify = false;
                i += 1;
            }
            "--check-determinism" => {
                parsed.check_determinism = true;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if parsed.devices.is_empty() || parsed.routers.is_empty() {
        return Err("need at least one device and one router".into());
    }
    Ok(parsed)
}

fn run_once(args: &Args, threads: usize) -> SuiteResult {
    let entries: Vec<_> = full_suite().into_iter().take(args.limit).collect();
    let mut runner = SuiteRunner::new(EngineConfig {
        threads,
        seed: args.seed,
        verify: args.verify,
        routers: args.routers.clone(),
        ..EngineConfig::default()
    })
    .devices(args.devices.iter().cloned())
    .entries(entries);
    if let Some(backend) = args.sim {
        runner = runner.sim_backend(backend);
    }
    runner.run()
}

fn print_result(result: &SuiteResult) {
    println!(
        "{:<22}{:<16}{:>8}{:>10}{:>14}{:>8}{:>10}",
        "circuit", "device", "qubits", "router", "weighted D", "swaps", "verified"
    );
    for row in &result.summary.rows {
        println!(
            "{:<22}{:<16}{:>8}{:>10}{:>14}{:>8}{:>10}",
            row.circuit,
            row.device,
            row.num_qubits,
            row.router.name(),
            row.weighted_depth,
            row.swaps,
            match row.verified {
                Some(true) => "ok",
                Some(false) => "FAILED",
                None => "-",
            }
        );
    }
    println!();
    for (device, mean) in result.summary.mean_speedup_by_device() {
        println!("mean speedup (sabre/codar) on {device}: {mean:.3}");
    }
    println!(
        "{} jobs on {} threads in {:.2?} (sum of route times {:.2?}, pool speedup {:.2}x, \
         {:.1} circuits/sec)",
        result.stats.jobs,
        result.stats.threads,
        result.stats.wall,
        result.stats.total_route_time,
        result.stats.pool_speedup(),
        result.stats.circuits_per_sec(),
    );
    for t in &result.stats.per_router {
        println!(
            "  {:<20} {:>5} jobs, total {:.2?}, mean {:.2?}",
            t.router,
            t.jobs,
            t.total,
            t.mean()
        );
    }
}

fn run(args: &Args) -> Result<(), String> {
    if args.check_determinism {
        let single = run_once(args, 1);
        let parallel = run_once(args, args.threads);
        let (a, b) = (single.summary.to_json(), parallel.summary.to_json());
        if a != b {
            return Err("DETERMINISM VIOLATION: 1-thread and N-thread summaries differ".into());
        }
        print_result(&parallel);
        println!(
            "determinism check: {} summary bytes identical across 1 vs {} threads; \
             wall {:.2?} -> {:.2?} ({:.2}x speedup)",
            a.len(),
            parallel.stats.threads,
            single.stats.wall,
            parallel.stats.wall,
            single.stats.wall.as_secs_f64() / parallel.stats.wall.as_secs_f64().max(1e-9),
        );
        // Health gates the outputs: a run with failed or unverified
        // jobs must exit non-zero *without* emitting summary or timing
        // files, so a broken run can never become the perf baseline.
        check_health(&single)?;
        check_health(&parallel)?;
        write_outputs(args, &parallel, Some(&single.stats))
    } else {
        let result = run_once(args, args.threads);
        print_result(&result);
        check_health(&result)?;
        write_outputs(args, &result, None)
    }
}

fn write_outputs(
    args: &Args,
    result: &SuiteResult,
    baseline: Option<&RunStats>,
) -> Result<(), String> {
    if let Some(path) = &args.json {
        std::fs::write(path, result.summary.to_json())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.csv {
        std::fs::write(path, result.summary.to_csv())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.timings {
        std::fs::write(path, result.stats.to_json(baseline))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
