//! Initial-mapping study: the paper notes "initial mapping has been
//! proved to be significant for the qubit mapping problem". This binary
//! quantifies it: CODAR's weighted depth under identity, random and
//! SABRE reverse-traversal initial mappings.
//!
//! Usage: `cargo run -p codar-bench --release --bin mappings`

use codar_arch::Device;
use codar_benchmarks::full_suite;
use codar_router::{CodarRouter, InitialMapping};

fn main() {
    let device = Device::ibm_q20_tokyo();
    let mut suite = full_suite();
    suite.retain(|e| e.num_qubits <= device.num_qubits() && e.circuit.len() < 2000);
    let strategies: Vec<(&str, InitialMapping)> = vec![
        ("identity", InitialMapping::Identity),
        ("random(0)", InitialMapping::Random { seed: 0 }),
        ("random(1)", InitialMapping::Random { seed: 1 }),
        ("dense-layout", InitialMapping::DenseLayout),
        (
            "reverse-traversal",
            InitialMapping::SabreReverseTraversal { seed: 0 },
        ),
    ];
    println!(
        "Initial mapping study on {} ({} benchmarks)\n",
        device.name(),
        suite.len()
    );
    let mut header = format!("{:<14}", "benchmark");
    for (name, _) in &strategies {
        header.push_str(&format!("{name:>20}"));
    }
    println!("{header}");
    let mut totals = vec![0.0f64; strategies.len()];
    let mut counted = 0usize;
    for entry in &suite {
        let mut row = format!("{:<14}", entry.name);
        let mut depths = Vec::new();
        for (_, strategy) in &strategies {
            let config = codar_router::CodarConfig {
                initial_mapping: strategy.clone(),
                ..codar_router::CodarConfig::default()
            };
            let routed = CodarRouter::with_config(&device, config)
                .route(&entry.circuit)
                .expect("suite fits");
            row.push_str(&format!("{:>20}", routed.weighted_depth));
            depths.push(routed.weighted_depth as f64);
        }
        println!("{row}");
        let best = depths.iter().cloned().fold(f64::INFINITY, f64::min);
        if best > 0.0 {
            for (i, d) in depths.iter().enumerate() {
                totals[i] += d / best;
            }
            counted += 1;
        }
    }
    println!("\nAverage weighted depth relative to per-benchmark best (lower is better):");
    for (i, (name, _)) in strategies.iter().enumerate() {
        println!("  {:<20} {:.3}", name, totals[i] / counted.max(1) as f64);
    }
}
