//! Initial-mapping study: the paper notes "initial mapping has been
//! proved to be significant for the qubit mapping problem". This binary
//! quantifies it: CODAR's weighted depth under identity, random,
//! dense-layout and SABRE reverse-traversal initial mappings.
//!
//! Usage: `mappings [--threads N] [--max-gates G]`
//!
//! Each strategy is a [`codar_engine::RouterVariant`] with
//! `shared_initial_mapping` off, so every variant builds its own
//! placement — all (benchmark × strategy) cells route in one parallel
//! matrix. Stdout is byte-identical for any `--threads` value.

use codar_arch::Device;
use codar_bench::{check_health, cli, report_timing, suite_order};
use codar_benchmarks::full_suite;
use codar_engine::{EngineConfig, RouterVariant, SuiteRunner};
use codar_router::{CodarConfig, InitialMapping};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "usage: mappings [--threads N] [--max-gates G]";

struct Args {
    threads: usize,
    max_gates: usize,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        threads: 0,
        max_gates: 2000,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                parsed.threads = cli::flag_value(args, i, "--threads")?;
                i += 2;
            }
            "--max-gates" => {
                parsed.max_gates = cli::flag_value(args, i, "--max-gates")?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn run(args: &Args) -> Result<(), String> {
    let device = Device::ibm_q20_tokyo();
    let mut suite = full_suite();
    suite.retain(|e| e.num_qubits <= device.num_qubits() && e.circuit.len() < args.max_gates);
    let order = suite_order(&suite);
    let strategies: Vec<(&str, InitialMapping)> = vec![
        ("identity", InitialMapping::Identity),
        ("random(0)", InitialMapping::Random { seed: 0 }),
        ("random(1)", InitialMapping::Random { seed: 1 }),
        ("dense-layout", InitialMapping::DenseLayout),
        (
            "reverse-traversal",
            InitialMapping::SabreReverseTraversal { seed: 0 },
        ),
    ];
    println!(
        "Initial mapping study on {} ({} benchmarks)\n",
        device.name(),
        suite.len()
    );

    let result = SuiteRunner::new(EngineConfig {
        threads: args.threads,
        shared_initial_mapping: false,
        ..EngineConfig::default()
    })
    .device(device.clone())
    .entries(suite)
    .variants(strategies.iter().map(|(name, strategy)| {
        RouterVariant::codar(
            *name,
            CodarConfig {
                initial_mapping: strategy.clone(),
                ..CodarConfig::default()
            },
        )
    }))
    .run();

    let mut depth: HashMap<(&str, &str), u64> = HashMap::new();
    for row in &result.summary.rows {
        depth.insert((&row.circuit, &row.variant), row.weighted_depth);
    }
    let mut circuits: Vec<&str> = result
        .summary
        .rows
        .iter()
        .map(|r| r.circuit.as_str())
        .collect();
    circuits.sort_by_key(|name| order.get(*name).copied().unwrap_or(usize::MAX));
    circuits.dedup();

    let mut header = format!("{:<14}", "benchmark");
    for (name, _) in &strategies {
        header.push_str(&format!("{name:>20}"));
    }
    println!("{header}");
    let mut totals = vec![0.0f64; strategies.len()];
    let mut counted = 0usize;
    for circuit in circuits {
        let mut row = format!("{circuit:<14}");
        let mut depths = Vec::new();
        for (name, _) in &strategies {
            let d = depth.get(&(circuit, *name)).copied();
            depths.push(d);
            match d {
                Some(d) => row.push_str(&format!("{d:>20}")),
                None => row.push_str(&format!("{:>20}", "-")),
            }
        }
        println!("{row}");
        // Skip circuits with a failed strategy: a missing depth would
        // otherwise masquerade as the per-benchmark best.
        let Some(depths): Option<Vec<u64>> = depths.into_iter().collect() else {
            continue;
        };
        let best = depths
            .iter()
            .map(|&d| d as f64)
            .fold(f64::INFINITY, f64::min);
        if best > 0.0 {
            for (i, &d) in depths.iter().enumerate() {
                totals[i] += d as f64 / best;
            }
            counted += 1;
        }
    }
    println!("\nAverage weighted depth relative to per-benchmark best (lower is better):");
    for (i, (name, _)) in strategies.iter().enumerate() {
        println!("  {:<20} {:.3}", name, totals[i] / counted.max(1) as f64);
    }
    report_timing(&result.stats);
    check_health(&result)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
