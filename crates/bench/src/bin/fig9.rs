//! Regenerates Fig. 9: fidelity of the circuits produced by CODAR and
//! SABRE for seven famous quantum algorithms, under dephasing-dominant
//! and damping-dominant noise, on the IBM Q20 Tokyo model.
//!
//! Usage: `fig9 [--trajectories N] [--threads N] [--seed S]`
//! (a bare positional trajectory count is also accepted).
//!
//! All (algorithm × router × regime) cells fan out across the
//! [`codar_engine::SuiteRunner`] worker pool; per-job RNG seeding
//! keeps the table byte-identical for any `--threads` value.

use codar_arch::Device;
use codar_bench::{check_health, cli, report_timing, suite_order};
use codar_benchmarks::suite::fidelity_suite;
use codar_engine::{Comparison, EngineConfig, NoiseSpec, SuiteRunner};
use codar_sim::NoiseModel;
use std::process::ExitCode;

const USAGE: &str = "usage: fig9 [--trajectories N] [--threads N] [--seed S]";

struct Args {
    trajectories: usize,
    threads: usize,
    seed: u64,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        trajectories: 200,
        threads: 0,
        seed: 0,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trajectories" => {
                parsed.trajectories = cli::flag_value(args, i, "--trajectories")?;
                i += 2;
            }
            "--threads" => {
                parsed.threads = cli::flag_value(args, i, "--threads")?;
                i += 2;
            }
            "--seed" => {
                parsed.seed = cli::flag_value(args, i, "--seed")?;
                i += 2;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            positional => {
                parsed.trajectories = cli::positional(positional, "trajectory count")?;
                i += 1;
            }
        }
    }
    if parsed.trajectories == 0 {
        return Err("--trajectories must be at least 1".into());
    }
    Ok(parsed)
}

fn run(args: &Args) -> Result<(), String> {
    let device = Device::ibm_q20_tokyo();
    let suite = fidelity_suite();
    let order = suite_order(&suite);
    let regimes = [
        ("dephasing", NoiseModel::dephasing_dominant()),
        ("damping", NoiseModel::damping_dominant()),
    ];
    println!(
        "Fig. 9: circuit fidelity, CODAR vs SABRE on {} ({} trajectories)\n",
        device.name(),
        args.trajectories
    );

    let result = SuiteRunner::new(EngineConfig {
        threads: args.threads,
        seed: args.seed,
        ..EngineConfig::default()
    })
    .device(device.clone())
    .entries(suite)
    .noise_specs(
        regimes
            .iter()
            .map(|(label, model)| NoiseSpec::new(*label, model.clone(), args.trajectories)),
    )
    .run();

    for (regime, noise) in &regimes {
        println!(
            "--- {regime}-dominant noise (p_z = {}, gamma = {}) ---",
            noise.dephasing_prob, noise.damping_rate
        );
        println!(
            "{:<12}{:>11}{:>11}{:>16}{:>16}{:>9}",
            "algorithm", "codar WD", "sabre WD", "codar fidelity", "sabre fidelity", "delta"
        );
        let mut cells: Vec<&Comparison> = result
            .summary
            .comparisons
            .iter()
            .filter(|c| c.noise.as_deref() == Some(regime))
            .collect();
        cells.sort_by_key(|c| order.get(&c.circuit).copied().unwrap_or(usize::MAX));
        for c in cells {
            let (codar, sabre) = match (c.codar_fidelity, c.sabre_fidelity) {
                (Some(codar), Some(sabre)) => (codar, sabre),
                _ => continue,
            };
            println!(
                "{:<12}{:>11}{:>11}{:>10.4} ±{:.3}{:>10.4} ±{:.3}{:>+9.4}",
                c.circuit,
                c.codar_depth,
                c.sabre_depth,
                codar.mean,
                codar.std_error,
                sabre.mean,
                sabre.std_error,
                codar.mean - sabre.mean,
            );
        }
        println!();
    }
    println!("Expected shape (paper): under dephasing CODAR >= SABRE (shorter schedules");
    println!("idle less); under damping the two are about the same.");
    report_timing(&result.stats);
    check_health(&result)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
