//! Regenerates Fig. 9: fidelity of the circuits produced by CODAR and
//! SABRE for seven famous quantum algorithms, under dephasing-dominant
//! and damping-dominant noise, on the IBM Q20 Tokyo model.
//!
//! Usage: `cargo run -p codar-bench --release --bin fig9 [trajectories]`

use codar_arch::Device;
use codar_bench::fidelity_compare;
use codar_benchmarks::suite::fidelity_suite;
use codar_sim::NoiseModel;

fn main() {
    let trajectories: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let device = Device::ibm_q20_tokyo();
    let suite = fidelity_suite();
    println!(
        "Fig. 9: circuit fidelity, CODAR vs SABRE on {} ({} trajectories)\n",
        device.name(),
        trajectories
    );
    for (regime, noise) in [
        ("dephasing-dominant", NoiseModel::dephasing_dominant()),
        ("damping-dominant", NoiseModel::damping_dominant()),
    ] {
        println!(
            "--- {regime} noise (p_z = {}, gamma = {}) ---",
            noise.dephasing_prob, noise.damping_rate
        );
        println!(
            "{:<12}{:>11}{:>11}{:>16}{:>16}{:>9}",
            "algorithm", "codar WD", "sabre WD", "codar fidelity", "sabre fidelity", "delta"
        );
        for entry in &suite {
            match fidelity_compare(&device, entry, &noise, trajectories, 0) {
                Ok(row) => println!(
                    "{:<12}{:>11}{:>11}{:>10.4} ±{:.3}{:>10.4} ±{:.3}{:>+9.4}",
                    row.name,
                    row.codar_depth,
                    row.sabre_depth,
                    row.codar_fidelity.mean,
                    row.codar_fidelity.std_error,
                    row.sabre_fidelity.mean,
                    row.sabre_fidelity.std_error,
                    row.codar_fidelity.mean - row.sabre_fidelity.mean,
                ),
                Err(e) => println!("{:<12} failed: {e}", entry.name),
            }
        }
        println!();
    }
    println!("Expected shape (paper): under dephasing CODAR >= SABRE (shorter schedules");
    println!("idle less); under damping the two are about the same.");
}
