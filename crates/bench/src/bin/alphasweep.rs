//! Alpha sweep: the fidelity-vs-depth tradeoff of calibration-aware
//! routing (`codar-cal`).
//!
//! Usage: `alphasweep [--device NAME] [--seed S] [--drift N]
//!                    [--alphas a,b,..] [--max-gates N] [--threads N]`
//!
//! Routes every fitting benchmark on one device against a seeded,
//! drifted [`codar_arch::CalibrationSnapshot`], once with plain
//! (duration-only) CODAR and once per `codar-cal` alpha, then prints
//! the deterministic tradeoff table: mean weighted depth, mean EPS
//! (estimated success probability of the routed circuit under the
//! snapshot) and the EPS delta vs the duration-only baseline. Output
//! is byte-identical for any `--threads` value — snapshots, routing
//! and EPS are all pure functions of the printed configuration.

use codar_arch::Device;
use codar_bench::{check_health, cli, report_timing};
use codar_benchmarks::full_suite;
use codar_engine::{CalibrationSpec, EngineConfig, RouterKind, RouterVariant, SuiteRunner};
use std::process::ExitCode;

const USAGE: &str = "usage: alphasweep [--device NAME] [--seed S] [--drift N] \
                     [--alphas a,b,..] [--max-gates N] [--threads N]";

struct Args {
    device: Device,
    seed: u64,
    drift: usize,
    alphas: Vec<f64>,
    max_gates: usize,
    threads: usize,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        device: Device::ibm_q20_tokyo(),
        seed: 11,
        drift: 2,
        alphas: vec![0.0, 0.25, 0.5, 1.0],
        max_gates: 2000,
        threads: 0,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--device" => {
                let name: String = cli::flag_value(args, i, "--device")?;
                parsed.device =
                    Device::by_name(&name).ok_or_else(|| format!("unknown device `{name}`"))?;
                i += 2;
            }
            "--seed" => {
                parsed.seed = cli::flag_value(args, i, "--seed")?;
                i += 2;
            }
            "--drift" => {
                parsed.drift = cli::flag_value(args, i, "--drift")?;
                i += 2;
            }
            "--alphas" => {
                let list: String = cli::flag_value(args, i, "--alphas")?;
                parsed.alphas = list
                    .split(',')
                    .map(|a| {
                        a.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("bad alpha `{a}`: {e}"))
                            .and_then(|a| {
                                if a.is_finite() && (0.0..=8.0).contains(&a) {
                                    Ok(a)
                                } else {
                                    Err(format!("alpha {a} out of [0, 8]"))
                                }
                            })
                    })
                    .collect::<Result<_, _>>()?;
                if parsed.alphas.is_empty() {
                    return Err("--alphas needs at least one value".to_string());
                }
                i += 2;
            }
            "--max-gates" => {
                parsed.max_gates = cli::flag_value(args, i, "--max-gates")?;
                i += 2;
            }
            "--threads" => {
                parsed.threads = cli::flag_value(args, i, "--threads")?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn run(args: &Args) -> Result<(), String> {
    let mut suite = full_suite();
    suite.retain(|e| e.num_qubits <= args.device.num_qubits() && e.circuit.len() < args.max_gates);
    let spec_label = format!("seed{}-drift{}", args.seed, args.drift);
    println!(
        "Alpha sweep on {} — snapshot {spec_label}, {} benchmarks",
        args.device.name(),
        suite.len()
    );

    let mut runner = SuiteRunner::new(EngineConfig {
        threads: args.threads,
        ..EngineConfig::default()
    })
    .device(args.device.clone())
    .entries(suite)
    .calibration(CalibrationSpec::synthetic(
        spec_label.clone(),
        args.seed,
        args.drift,
    ))
    .variant(RouterVariant::of_kind(RouterKind::Codar));
    for &alpha in &args.alphas {
        let mut variant = RouterVariant::of_kind(RouterKind::CodarCal);
        variant.label = format!("alpha={alpha:.2}");
        variant.codar.cal_alpha = alpha;
        runner = runner.variant(variant);
    }
    let result = runner.run();

    // Per-variant aggregates over the deterministic rows.
    let mut labels: Vec<String> = vec!["codar".to_string()];
    labels.extend(args.alphas.iter().map(|a| format!("alpha={a:.2}")));
    println!(
        "\n{:<14} {:>16} {:>12} {:>14} {:>12}",
        "variant", "mean wdepth", "mean eps", "Δeps vs codar", "eps wins"
    );
    let mut baseline_eps = 0.0f64;
    let mut best: Option<(f64, String)> = None;
    for label in &labels {
        let rows: Vec<_> = result
            .summary
            .rows
            .iter()
            .filter(|r| &r.variant == label)
            .collect();
        if rows.is_empty() {
            return Err(format!("variant `{label}` produced no rows"));
        }
        let n = rows.len() as f64;
        let mean_depth = rows.iter().map(|r| r.weighted_depth as f64).sum::<f64>() / n;
        let mean_eps = rows
            .iter()
            .map(|r| r.eps.expect("calibration axis attaches eps"))
            .sum::<f64>()
            / n;
        if label == "codar" {
            baseline_eps = mean_eps;
        }
        // Per-circuit wins: on how many benchmarks this variant's EPS
        // beats the duration-only baseline.
        let wins = rows
            .iter()
            .filter(|r| {
                result
                    .summary
                    .rows
                    .iter()
                    .find(|b| b.variant == "codar" && b.circuit == r.circuit)
                    .is_some_and(|b| r.eps > b.eps)
            })
            .count();
        println!(
            "{:<14} {:>16.2} {:>12.6} {:>+14.6} {:>9}/{}",
            label,
            mean_depth,
            mean_eps,
            mean_eps - baseline_eps,
            wins,
            rows.len()
        );
        if label != "codar" && best.as_ref().is_none_or(|(b, _)| mean_eps > *b) {
            best = Some((mean_eps, label.clone()));
        }
    }
    if let Some((best_eps, best_label)) = best {
        println!(
            "\nBest calibration-aware variant: {best_label} \
             (mean EPS {best_eps:.6} vs duration-only {baseline_eps:.6}, {:+.6})",
            best_eps - baseline_eps
        );
    }
    report_timing(&result.stats);
    check_health(&result)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
