//! Portfolio routing sweep: `auto` (route under every member, keep the
//! verified winner) against each fixed member variant.
//!
//! Usage: `portfolio [--device NAME] [--seed S] [--drift N]
//!                   [--alpha A] [--max-gates N] [--threads N]`
//!
//! Routes every fitting benchmark on one device against a seeded,
//! drifted [`codar_arch::CalibrationSnapshot`], once per fixed member
//! (CODAR, calibration-blended CODAR, greedy, SABRE) and once with the
//! portfolio (`auto`), then prints the deterministic comparison table:
//! mean weighted depth, mean EPS, the EPS gap to the portfolio, and
//! how often each member *was* the portfolio's pick. The run fails if
//! the portfolio's mean EPS falls below any fixed member's — the
//! selection rule scores exactly the quantity the table reports, so
//! per-circuit max must dominate every per-member mean. Output is
//! byte-identical for any `--threads` value and across reruns.

use codar_arch::Device;
use codar_bench::{check_health, cli, report_timing};
use codar_benchmarks::full_suite;
use codar_engine::{
    CalibrationSpec, EngineConfig, RouterVariant, SuiteRunner, DEFAULT_PORTFOLIO_ALPHA,
};
use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "usage: portfolio [--device NAME] [--seed S] [--drift N] \
                     [--alpha A] [--max-gates N] [--threads N]";

struct Args {
    device: Device,
    seed: u64,
    drift: usize,
    alpha: f64,
    max_gates: usize,
    threads: usize,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        device: Device::ibm_q20_tokyo(),
        seed: 11,
        drift: 2,
        alpha: DEFAULT_PORTFOLIO_ALPHA,
        max_gates: 2000,
        threads: 0,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--device" => {
                let name: String = cli::flag_value(args, i, "--device")?;
                parsed.device =
                    Device::by_name(&name).ok_or_else(|| format!("unknown device `{name}`"))?;
                i += 2;
            }
            "--seed" => {
                parsed.seed = cli::flag_value(args, i, "--seed")?;
                i += 2;
            }
            "--drift" => {
                parsed.drift = cli::flag_value(args, i, "--drift")?;
                i += 2;
            }
            "--alpha" => {
                parsed.alpha = cli::flag_value(args, i, "--alpha")?;
                if !parsed.alpha.is_finite() || !(0.0..=8.0).contains(&parsed.alpha) {
                    return Err(format!("alpha {} out of [0, 8]", parsed.alpha));
                }
                i += 2;
            }
            "--max-gates" => {
                parsed.max_gates = cli::flag_value(args, i, "--max-gates")?;
                i += 2;
            }
            "--threads" => {
                parsed.threads = cli::flag_value(args, i, "--threads")?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn run(args: &Args) -> Result<(), String> {
    let mut suite = full_suite();
    suite.retain(|e| e.num_qubits <= args.device.num_qubits() && e.circuit.len() < args.max_gates);
    let spec_label = format!("seed{}-drift{}", args.seed, args.drift);
    println!(
        "Portfolio sweep on {} — snapshot {spec_label}, alpha {:.2}, {} benchmarks",
        args.device.name(),
        args.alpha,
        suite.len()
    );

    // The four fixed members under their portfolio labels, then the
    // portfolio itself: same circuits, same snapshot, same shared
    // initial mapping — the only difference is who routes.
    let members = RouterVariant::portfolio_members(args.alpha);
    let mut runner = SuiteRunner::new(EngineConfig {
        threads: args.threads,
        ..EngineConfig::default()
    })
    .device(args.device.clone())
    .entries(suite)
    .calibration(CalibrationSpec::synthetic(
        spec_label.clone(),
        args.seed,
        args.drift,
    ));
    let mut labels: Vec<String> = Vec::new();
    for member in &members {
        labels.push(member.label.clone());
        runner = runner.variant(member.clone());
    }
    runner = runner.variant(RouterVariant::portfolio(args.alpha));
    let result = runner.run();

    let auto_rows: Vec<_> = result
        .summary
        .rows
        .iter()
        .filter(|r| r.variant == "auto")
        .collect();
    if auto_rows.is_empty() {
        return Err("portfolio produced no rows".to_string());
    }
    let auto_eps = |circuit: &str| -> f64 {
        auto_rows
            .iter()
            .find(|r| r.circuit == circuit)
            .and_then(|r| r.eps)
            .expect("calibration axis attaches eps to every row")
    };
    let n = auto_rows.len() as f64;
    let auto_mean = auto_rows
        .iter()
        .map(|r| r.eps.expect("calibration axis attaches eps"))
        .sum::<f64>()
        / n;

    println!(
        "\n{:<12} {:>16} {:>12} {:>14} {:>12}",
        "variant", "mean wdepth", "mean eps", "Δeps vs auto", "picked"
    );
    let mut dominated = true;
    let mut table: Vec<(String, f64)> = Vec::new();
    for label in &labels {
        let rows: Vec<_> = result
            .summary
            .rows
            .iter()
            .filter(|r| &r.variant == label)
            .collect();
        if rows.len() != auto_rows.len() {
            return Err(format!(
                "variant `{label}` produced {} rows, portfolio {}",
                rows.len(),
                auto_rows.len()
            ));
        }
        let mean_depth = rows.iter().map(|r| r.weighted_depth as f64).sum::<f64>() / n;
        let mean_eps = rows
            .iter()
            .map(|r| r.eps.expect("calibration axis attaches eps"))
            .sum::<f64>()
            / n;
        // On how many benchmarks the portfolio's winner was this
        // member (label match on the auto row's `chosen` column).
        let picked = auto_rows
            .iter()
            .filter(|r| r.chosen.as_deref() == Some(label.as_str()))
            .count();
        println!(
            "{:<12} {:>16.2} {:>12.6} {:>+14.6} {:>9}/{}",
            label,
            mean_depth,
            mean_eps,
            mean_eps - auto_mean,
            picked,
            rows.len()
        );
        // Selection scores each member with the same EPS the table
        // averages, so the per-circuit winner can never lose in the
        // mean; enforce it per circuit and in aggregate.
        for row in &rows {
            let member = row.eps.expect("calibration axis attaches eps");
            if member > auto_eps(&row.circuit) {
                dominated = false;
            }
        }
        if mean_eps > auto_mean {
            dominated = false;
        }
        table.push((label.clone(), mean_eps));
    }
    let auto_depth = auto_rows
        .iter()
        .map(|r| r.weighted_depth as f64)
        .sum::<f64>()
        / n;
    println!(
        "{:<12} {:>16.2} {:>12.6} {:>+14.6} {:>9}/{}",
        "auto",
        auto_depth,
        auto_mean,
        0.0,
        auto_rows.len(),
        auto_rows.len()
    );

    // How often each member won, in deterministic label order — the
    // fleet-level answer to "which router should I default to?".
    let mut picks: BTreeMap<&str, usize> = BTreeMap::new();
    for row in &auto_rows {
        *picks
            .entry(row.chosen.as_deref().expect("portfolio rows name a winner"))
            .or_insert(0) += 1;
    }
    let picks: Vec<String> = picks.iter().map(|(k, v)| format!("{k} {v}")).collect();
    println!("\nChosen-member distribution: {}", picks.join(", "));

    let (best_label, best_eps) = table
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
        .expect("at least one fixed member");
    if !dominated {
        return Err(format!(
            "portfolio mean EPS {auto_mean:.6} fails to dominate fixed variant \
             `{best_label}` ({best_eps:.6})"
        ));
    }
    println!(
        "Portfolio dominance: auto mean EPS {auto_mean:.6} >= every fixed member \
         (best fixed: {best_label} {best_eps:.6}, margin {:+.6})",
        auto_mean - best_eps
    );
    report_timing(&result.stats);
    check_health(&result)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
