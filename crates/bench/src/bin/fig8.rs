//! Regenerates Fig. 8: speedup ratio (SABRE weighted depth / CODAR
//! weighted depth) of the benchmark suite on the four architectures.
//!
//! Usage: `cargo run -p codar-bench --release --bin fig8 [--quick] [--threads N]`
//!
//! `--quick` restricts the run to benchmarks below 2000 gates (useful
//! for smoke tests; the full run covers all 71 benchmarks).
//!
//! The heavy lifting goes through [`codar_engine::SuiteRunner`]: all
//! four architectures route in parallel with shared per-device
//! distance caches, and every routed circuit is verified.

use codar_arch::Device;
use codar_benchmarks::full_suite;
use codar_engine::{EngineConfig, RouterKind, SuiteRunner};
use std::collections::HashMap;

fn parse_args(args: &[String]) -> Result<(bool, usize), String> {
    let mut quick = false;
    let mut threads = 0usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--threads" => {
                threads = args
                    .get(i + 1)
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok((quick, threads))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (quick, threads) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}\nusage: fig8 [--quick] [--threads N]");
            std::process::exit(1);
        }
    };

    let mut suite = full_suite();
    if quick {
        suite.retain(|e| e.circuit.len() < 2000);
    }
    let suite_order: HashMap<String, usize> = suite
        .iter()
        .enumerate()
        .map(|(i, e)| (e.name.clone(), i))
        .collect();
    println!(
        "Fig. 8: CODAR vs SABRE speedup on {} benchmarks (ascending qubit count)\n",
        suite.len()
    );

    let devices = Device::paper_architectures();
    let result = SuiteRunner::new(EngineConfig {
        threads,
        ..EngineConfig::default()
    })
    .devices(devices.iter().cloned())
    .entries(suite)
    .run();
    for failure in &result.failures {
        eprintln!(
            "warning: {} on {} failed: {}",
            failure.circuit, failure.device, failure.error
        );
    }

    // Join codar/sabre rows per (device, circuit) for the swap columns.
    let mut swaps: HashMap<(&str, &str, RouterKind), usize> = HashMap::new();
    let mut unverified = 0usize;
    for row in &result.summary.rows {
        swaps.insert((&row.device, &row.circuit, row.router), row.swaps);
        if row.verified == Some(false) {
            eprintln!(
                "warning: {} ({}) on {} failed verification",
                row.circuit,
                row.router.name(),
                row.device
            );
            unverified += 1;
        }
    }
    let gates: HashMap<&str, (usize, usize)> = result
        .summary
        .rows
        .iter()
        .map(|r| (r.circuit.as_str(), (r.num_qubits, r.input_gates)))
        .collect();

    let device_means: HashMap<String, f64> = result
        .summary
        .mean_speedup_by_device()
        .into_iter()
        .collect();
    let mut averages = Vec::new();
    for device in &devices {
        println!("=== {device} ===");
        println!(
            "{:<14}{:>7}{:>9}{:>12}{:>12}{:>10}{:>10}{:>9}",
            "benchmark",
            "qubits",
            "gates",
            "codar WD",
            "sabre WD",
            "codar SW",
            "sabre SW",
            "speedup"
        );
        let mut rows: Vec<_> = result
            .summary
            .comparisons
            .iter()
            .filter(|c| c.device == device.name())
            .collect();
        rows.sort_by_key(|c| suite_order.get(&c.circuit).copied().unwrap_or(usize::MAX));
        for c in &rows {
            let (qubits, gate_count) = gates.get(c.circuit.as_str()).copied().unwrap_or((0, 0));
            println!(
                "{:<14}{:>7}{:>9}{:>12}{:>12}{:>10}{:>10}{:>9.3}",
                c.circuit,
                qubits,
                gate_count,
                c.codar_depth,
                c.sabre_depth,
                swaps
                    .get(&(device.name(), c.circuit.as_str(), RouterKind::Codar))
                    .copied()
                    .unwrap_or(0),
                swaps
                    .get(&(device.name(), c.circuit.as_str(), RouterKind::Sabre))
                    .copied()
                    .unwrap_or(0),
                c.speedup()
            );
        }
        match device_means.get(device.name()).copied() {
            Some(avg) => {
                println!(
                    "--- average speedup on {}: {:.3} ({} benchmarks) ---\n",
                    device.name(),
                    avg,
                    rows.len()
                );
                averages.push((device.name().to_string(), avg, rows.len()));
            }
            None => println!("--- no benchmarks fit {} ---\n", device.name()),
        }
    }
    println!("Summary (paper reports 1.212 / 1.241 / 1.214 / 1.258):");
    for (name, avg, n) in &averages {
        println!("  {name:<22} {avg:.3}  ({n} benchmarks)");
    }
    println!(
        "\n[{} jobs, {} threads, wall {:.2?}]",
        result.stats.jobs, result.stats.threads, result.stats.wall
    );
    if !result.failures.is_empty() || unverified > 0 {
        eprintln!(
            "{} routing jobs failed, {} routed circuits failed verification",
            result.failures.len(),
            unverified
        );
        std::process::exit(1);
    }
}
