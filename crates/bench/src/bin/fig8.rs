//! Regenerates Fig. 8: speedup ratio (SABRE weighted depth / CODAR
//! weighted depth) of the benchmark suite on the four architectures.
//!
//! Usage: `cargo run -p codar-bench --release --bin fig8 [--quick]`
//!
//! `--quick` restricts the run to benchmarks below 2000 gates (useful
//! for smoke tests; the full run covers all 71 benchmarks).

use codar_arch::Device;
use codar_bench::{average_speedup, fig8_for_device};
use codar_benchmarks::full_suite;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut suite = full_suite();
    if quick {
        suite.retain(|e| e.circuit.len() < 2000);
    }
    println!(
        "Fig. 8: CODAR vs SABRE speedup on {} benchmarks (ascending qubit count)\n",
        suite.len()
    );
    let mut averages = Vec::new();
    for device in Device::paper_architectures() {
        println!("=== {device} ===");
        println!(
            "{:<14}{:>7}{:>9}{:>12}{:>12}{:>10}{:>10}{:>9}",
            "benchmark", "qubits", "gates", "codar WD", "sabre WD", "codar SW", "sabre SW", "speedup"
        );
        let rows = fig8_for_device(&device, &suite, 0);
        for r in &rows {
            println!(
                "{:<14}{:>7}{:>9}{:>12}{:>12}{:>10}{:>10}{:>9.3}",
                r.name,
                r.num_qubits,
                r.gates,
                r.codar_depth,
                r.sabre_depth,
                r.codar_swaps,
                r.sabre_swaps,
                r.speedup()
            );
        }
        let avg = average_speedup(&rows);
        println!(
            "--- average speedup on {}: {:.3} ({} benchmarks) ---\n",
            device.name(),
            avg,
            rows.len()
        );
        averages.push((device.name().to_string(), avg, rows.len()));
    }
    println!("Summary (paper reports 1.212 / 1.241 / 1.214 / 1.258):");
    for (name, avg, n) in &averages {
        println!("  {name:<22} {avg:.3}  ({n} benchmarks)");
    }
}
