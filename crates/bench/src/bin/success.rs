//! Analytic success-probability comparison (Sec. V-B, complementary to
//! the `fig9` trajectory simulation): product of per-gate fidelities ×
//! an idle-decoherence factor, over the whole suite — feasible where
//! state-vector simulation is not.
//!
//! Shows the paper's trade-off explicitly: CODAR inserts more SWAPs
//! (hurting the gate-fidelity product) but shortens the schedule
//! (helping the decoherence factor).
//!
//! Usage: `cargo run -p codar-bench --release --bin success`

use codar_arch::{Device, FidelityModel, TechnologyParams};
use codar_benchmarks::full_suite;
use codar_router::sabre::reverse_traversal_mapping;
use codar_router::{CodarRouter, SabreRouter};

fn main() {
    let device = Device::ibm_q20_tokyo();
    let q20 = TechnologyParams::table1()
        .into_iter()
        .find(|p| p.device == "IBM Q20")
        .expect("Table I has IBM Q20");
    // Table I gives no gate time for Q20; use the Q16 cycle (80 ns) to
    // convert T2 = 54.43 µs into cycles.
    let t2_cycles = q20.t2_us.expect("Q20 reports T2") * 1000.0 / 80.0;
    let model = FidelityModel::new(
        q20.fidelity_1q,
        q20.fidelity_2q,
        q20.fidelity_readout.unwrap_or(0.95),
    )
    .with_t2_cycles(t2_cycles);

    let mut suite = full_suite();
    suite.retain(|e| e.num_qubits <= device.num_qubits() && e.circuit.len() <= 500);
    println!(
        "Analytic success probability on {} (T2 = {:.0} cycles, {} benchmarks)\n",
        device.name(),
        t2_cycles,
        suite.len()
    );
    println!(
        "{:<14}{:>10}{:>10}{:>12}{:>12}{:>14}{:>14}",
        "benchmark", "codar SW", "sabre SW", "codar WD", "sabre WD", "codar P", "sabre P"
    );
    let tau = device.durations().clone();
    let mut codar_wins = 0usize;
    let mut total = 0usize;
    for entry in &suite {
        let initial = reverse_traversal_mapping(&entry.circuit, &device, 0);
        let Ok(codar) =
            CodarRouter::new(&device).route_with_mapping(&entry.circuit, initial.clone())
        else {
            continue;
        };
        let Ok(sabre) = SabreRouter::new(&device).route_with_mapping(&entry.circuit, initial)
        else {
            continue;
        };
        let pc = model.success_probability(&codar.circuit, &tau);
        let ps = model.success_probability(&sabre.circuit, &tau);
        println!(
            "{:<14}{:>10}{:>10}{:>12}{:>12}{:>14.4e}{:>14.4e}",
            entry.name,
            codar.swaps_inserted,
            sabre.swaps_inserted,
            codar.weighted_depth,
            sabre.weighted_depth,
            pc,
            ps
        );
        if pc >= ps {
            codar_wins += 1;
        }
        total += 1;
    }
    println!(
        "\nCODAR's estimated success >= SABRE's on {codar_wins}/{total} benchmarks \
         (more SWAPs, but less idle decoherence)."
    );
}
