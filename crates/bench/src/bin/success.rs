//! Analytic success-probability comparison (Sec. V-B, complementary to
//! the `fig9` trajectory simulation): product of per-gate fidelities ×
//! an idle-decoherence factor, over the whole suite — feasible where
//! state-vector simulation is not.
//!
//! Shows the paper's trade-off explicitly: CODAR inserts more SWAPs
//! (hurting the gate-fidelity product) but shortens the schedule
//! (helping the decoherence factor).
//!
//! Usage: `success [--threads N] [--max-gates G] [--seed S]`
//!
//! Routing fans out across the [`codar_engine::SuiteRunner`] pool with
//! `keep_routed` on; the analytic model then scores the kept circuits.
//! Stdout is byte-identical for any `--threads` value.

use codar_arch::{Device, FidelityModel, TechnologyParams};
use codar_bench::{check_health, cli, report_timing, suite_order};
use codar_benchmarks::full_suite;
use codar_engine::{EngineConfig, SuiteRunner};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "usage: success [--threads N] [--max-gates G] [--seed S]";

struct Args {
    threads: usize,
    max_gates: usize,
    seed: u64,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        threads: 0,
        max_gates: 500,
        seed: 0,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                parsed.threads = cli::flag_value(args, i, "--threads")?;
                i += 2;
            }
            "--max-gates" => {
                parsed.max_gates = cli::flag_value(args, i, "--max-gates")?;
                i += 2;
            }
            "--seed" => {
                parsed.seed = cli::flag_value(args, i, "--seed")?;
                i += 2;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn run(args: &Args) -> Result<(), String> {
    let device = Device::ibm_q20_tokyo();
    let q20 = TechnologyParams::table1()
        .into_iter()
        .find(|p| p.device == "IBM Q20")
        .expect("Table I has IBM Q20");
    // Table I gives no gate time for Q20; use the Q16 cycle (80 ns) to
    // convert T2 = 54.43 µs into cycles.
    let t2_cycles = q20.t2_us.expect("Q20 reports T2") * 1000.0 / 80.0;
    let model = FidelityModel::new(
        q20.fidelity_1q,
        q20.fidelity_2q,
        q20.fidelity_readout.unwrap_or(0.95),
    )
    .with_t2_cycles(t2_cycles);

    let mut suite = full_suite();
    suite.retain(|e| e.num_qubits <= device.num_qubits() && e.circuit.len() <= args.max_gates);
    let order = suite_order(&suite);
    println!(
        "Analytic success probability on {} (T2 = {:.0} cycles, {} benchmarks)\n",
        device.name(),
        t2_cycles,
        suite.len()
    );
    println!(
        "{:<14}{:>10}{:>10}{:>12}{:>12}{:>14}{:>14}",
        "benchmark", "codar SW", "sabre SW", "codar WD", "sabre WD", "codar P", "sabre P"
    );

    let result = SuiteRunner::new(EngineConfig {
        threads: args.threads,
        seed: args.seed,
        keep_routed: true,
        ..EngineConfig::default()
    })
    .device(device.clone())
    .entries(suite)
    .run();

    // Rows are deterministic; re-key them per (variant, circuit) so
    // the table prints in suite order with both routers side by side.
    let rows: HashMap<(&str, &str), &codar_engine::RouteReport> = result
        .summary
        .rows
        .iter()
        .map(|r| ((r.variant.as_str(), r.circuit.as_str()), r))
        .collect();
    let mut cells: Vec<_> = result.summary.comparisons.iter().collect();
    cells.sort_by_key(|c| order.get(&c.circuit).copied().unwrap_or(usize::MAX));

    let tau = device.durations().clone();
    let mut codar_wins = 0usize;
    let mut total = 0usize;
    for c in cells {
        let (Some(codar), Some(sabre)) = (
            rows.get(&("codar", c.circuit.as_str())),
            rows.get(&("sabre", c.circuit.as_str())),
        ) else {
            continue;
        };
        let (Some(codar_routed), Some(sabre_routed)) = (&codar.routed, &sabre.routed) else {
            continue;
        };
        let pc = model.success_probability(&codar_routed.circuit, &tau);
        let ps = model.success_probability(&sabre_routed.circuit, &tau);
        println!(
            "{:<14}{:>10}{:>10}{:>12}{:>12}{:>14.4e}{:>14.4e}",
            c.circuit, codar.swaps, sabre.swaps, c.codar_depth, c.sabre_depth, pc, ps
        );
        if pc >= ps {
            codar_wins += 1;
        }
        total += 1;
    }
    println!(
        "\nCODAR's estimated success >= SABRE's on {codar_wins}/{total} benchmarks \
         (more SWAPs, but less idle decoherence)."
    );
    report_timing(&result.stats);
    check_health(&result)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
