//! Routing error types.

use std::error::Error;
use std::fmt;

/// Why routing (or verification of a routed circuit) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The circuit uses more logical qubits than the device has physical
    /// qubits (the paper assumes `N ≥ n`).
    TooManyQubits {
        /// Logical qubits required.
        logical: usize,
        /// Physical qubits available.
        physical: usize,
    },
    /// The circuit contains a gate on 3+ qubits; decompose first
    /// (see `codar_circuit::decompose`).
    UnsupportedGate {
        /// Display form of the offending gate.
        gate: String,
    },
    /// The coupling graph cannot connect two qubits a gate needs.
    Disconnected {
        /// The physical endpoints with no path between them.
        a: usize,
        /// Second endpoint.
        b: usize,
    },
    /// A verification check failed (see `verify`).
    Verification(String),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::TooManyQubits { logical, physical } => write!(
                f,
                "circuit needs {logical} qubits but the device has only {physical}"
            ),
            RouteError::UnsupportedGate { gate } => {
                write!(
                    f,
                    "unsupported gate for routing: {gate} (decompose to <=2 qubits first)"
                )
            }
            RouteError::Disconnected { a, b } => {
                write!(f, "no coupling path between physical qubits {a} and {b}")
            }
            RouteError::Verification(msg) => write!(f, "verification failed: {msg}"),
        }
    }
}

impl Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RouteError::TooManyQubits {
            logical: 10,
            physical: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
        let e = RouteError::Disconnected { a: 1, b: 3 };
        assert!(e.to_string().contains("no coupling path"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<RouteError>();
    }
}
