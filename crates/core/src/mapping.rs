//! The dynamic logical→physical mapping `π` (paper Table II) and initial
//! mapping strategies.

use codar_arch::Device;
use codar_circuit::{Circuit, QubitId};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A bijective (partial, since `N ≥ n`) mapping between `n` logical and
/// `N` physical qubits, updatable by SWAPs.
///
/// # Examples
///
/// ```
/// use codar_router::Mapping;
///
/// let mut pi = Mapping::identity(3, 5);
/// assert_eq!(pi.phys_of(2), 2);
/// pi.apply_swap(2, 4); // physical swap
/// assert_eq!(pi.phys_of(2), 4);
/// assert_eq!(pi.logical_of(2), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    phys_of_logical: Vec<usize>,
    logical_of_phys: Vec<Option<QubitId>>,
}

impl Mapping {
    /// The identity mapping: logical `i` on physical `i`.
    ///
    /// # Panics
    ///
    /// Panics if `logical > physical`.
    pub fn identity(logical: usize, physical: usize) -> Self {
        assert!(logical <= physical, "need at least as many physical qubits");
        let phys_of_logical: Vec<usize> = (0..logical).collect();
        let mut logical_of_phys = vec![None; physical];
        for (l, &p) in phys_of_logical.iter().enumerate() {
            logical_of_phys[p] = Some(l);
        }
        Mapping {
            phys_of_logical,
            logical_of_phys,
        }
    }

    /// Builds a mapping from an explicit logical→physical assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is not injective or out of range.
    pub fn from_assignment(phys_of_logical: Vec<usize>, physical: usize) -> Self {
        let mut logical_of_phys = vec![None; physical];
        for (l, &p) in phys_of_logical.iter().enumerate() {
            assert!(p < physical, "physical qubit {p} out of range");
            assert!(
                logical_of_phys[p].is_none(),
                "physical qubit {p} assigned twice"
            );
            logical_of_phys[p] = Some(l);
        }
        Mapping {
            phys_of_logical,
            logical_of_phys,
        }
    }

    /// Number of logical qubits.
    pub fn num_logical(&self) -> usize {
        self.phys_of_logical.len()
    }

    /// Number of physical qubits.
    pub fn num_physical(&self) -> usize {
        self.logical_of_phys.len()
    }

    /// Physical location of logical qubit `l`.
    #[inline]
    pub fn phys_of(&self, l: QubitId) -> usize {
        self.phys_of_logical[l]
    }

    /// Logical occupant of physical qubit `p`, if any.
    #[inline]
    pub fn logical_of(&self, p: usize) -> Option<QubitId> {
        self.logical_of_phys[p]
    }

    /// Applies a SWAP between two *physical* qubits, exchanging their
    /// logical occupants (either may be unoccupied).
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        let la = self.logical_of_phys[a];
        let lb = self.logical_of_phys[b];
        self.logical_of_phys[a] = lb;
        self.logical_of_phys[b] = la;
        if let Some(l) = la {
            self.phys_of_logical[l] = b;
        }
        if let Some(l) = lb {
            self.phys_of_logical[l] = a;
        }
    }

    /// The logical→physical assignment vector.
    pub fn assignment(&self) -> &[usize] {
        &self.phys_of_logical
    }
}

/// Strategies for picking the initial mapping.
///
/// The paper uses "the same method as SABRE" (reverse traversal) for
/// both routers so the comparison isolates the routing policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitialMapping {
    /// Logical `i` starts on physical `i`.
    Identity,
    /// A seeded random placement.
    Random {
        /// RNG seed, so experiments are reproducible.
        seed: u64,
    },
    /// SABRE-style reverse traversal: route forward, then route the
    /// reversed circuit, and use the resulting final mapping (which
    /// reflects where the *early* gates want their qubits) as the
    /// initial mapping.
    SabreReverseTraversal {
        /// Seed for the underlying random start.
        seed: u64,
    },
    /// Density-based placement: logical qubits in descending
    /// interaction-degree order are placed to minimize the
    /// interaction-weighted distance to their already-placed partners
    /// (a DenseLayout-style heuristic; cheaper than reverse traversal,
    /// better than identity).
    DenseLayout,
    /// An explicit assignment.
    Fixed(Vec<usize>),
}

impl Default for InitialMapping {
    fn default() -> Self {
        InitialMapping::SabreReverseTraversal { seed: 0 }
    }
}

impl InitialMapping {
    /// Materializes the strategy for `circuit` on `device`.
    ///
    /// # Panics
    ///
    /// Panics if the device is smaller than the circuit (callers check
    /// this and return [`crate::RouteError::TooManyQubits`] first).
    pub fn build(&self, circuit: &Circuit, device: &Device) -> Mapping {
        self.build_scratch(circuit, device, &mut crate::scratch::RouterScratch::new())
    }

    /// As [`InitialMapping::build`], reusing `scratch` for the
    /// strategies that route (reverse traversal runs two SABRE passes).
    ///
    /// # Panics
    ///
    /// As for [`InitialMapping::build`].
    pub fn build_scratch(
        &self,
        circuit: &Circuit,
        device: &Device,
        scratch: &mut crate::scratch::RouterScratch,
    ) -> Mapping {
        let n = circuit.num_qubits();
        let big_n = device.num_qubits();
        match self {
            InitialMapping::Identity => Mapping::identity(n, big_n),
            InitialMapping::Random { seed } => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
                let mut phys: Vec<usize> = (0..big_n).collect();
                phys.shuffle(&mut rng);
                phys.truncate(n);
                Mapping::from_assignment(phys, big_n)
            }
            InitialMapping::SabreReverseTraversal { seed } => {
                crate::sabre::reverse_traversal_mapping_scratch(circuit, device, *seed, scratch)
            }
            InitialMapping::DenseLayout => dense_layout(circuit, device),
            InitialMapping::Fixed(assignment) => {
                Mapping::from_assignment(assignment.clone(), big_n)
            }
        }
    }
}

/// DenseLayout-style placement (see
/// [`InitialMapping::DenseLayout`]).
///
/// Placement order is descending interaction degree. The first qubit
/// goes on a maximum-degree physical site; every later qubit goes on
/// the free site minimizing `Σ weight(q, n) · D(site, π(n))` over its
/// already-placed interaction partners `n`, tie-broken by higher device
/// degree (denser neighborhoods leave more room for the rest).
pub fn dense_layout(circuit: &Circuit, device: &Device) -> Mapping {
    use codar_circuit::interaction::InteractionGraph;
    let n = circuit.num_qubits();
    let big_n = device.num_qubits();
    assert!(n <= big_n, "device too small");
    let ig = InteractionGraph::of(circuit);
    let dist = device.distances();
    let graph = device.graph();
    let mut phys_of_logical = vec![usize::MAX; n];
    let mut taken = vec![false; big_n];
    for q in ig.qubits_by_degree() {
        let partners: Vec<(usize, usize)> = ig
            .neighbors(q)
            .into_iter()
            .filter(|&(other, _)| phys_of_logical[other] != usize::MAX)
            .map(|(other, w)| (phys_of_logical[other], w))
            .collect();
        let score = |p: usize| -> (u64, std::cmp::Reverse<usize>, usize) {
            let cost: u64 = partners
                .iter()
                .map(|&(site, w)| {
                    let d = dist.get(p, site);
                    if d == codar_arch::DistanceMatrix::INF {
                        u64::MAX / 4
                    } else {
                        d as u64 * w as u64
                    }
                })
                .sum();
            (cost, std::cmp::Reverse(graph.degree(p)), p)
        };
        let best = (0..big_n)
            .filter(|&p| !taken[p])
            .min_by_key(|&p| score(p))
            .expect("device has at least n sites");
        phys_of_logical[q] = best;
        taken[best] = true;
    }
    Mapping::from_assignment(phys_of_logical, big_n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let pi = Mapping::identity(3, 5);
        for l in 0..3 {
            assert_eq!(pi.phys_of(l), l);
            assert_eq!(pi.logical_of(l), Some(l));
        }
        assert_eq!(pi.logical_of(4), None);
    }

    #[test]
    fn swap_occupied_pair() {
        let mut pi = Mapping::identity(2, 2);
        pi.apply_swap(0, 1);
        assert_eq!(pi.phys_of(0), 1);
        assert_eq!(pi.phys_of(1), 0);
        assert_eq!(pi.logical_of(0), Some(1));
        assert_eq!(pi.logical_of(1), Some(0));
    }

    #[test]
    fn swap_with_empty_site() {
        let mut pi = Mapping::identity(1, 3);
        pi.apply_swap(0, 2);
        assert_eq!(pi.phys_of(0), 2);
        assert_eq!(pi.logical_of(0), None);
        assert_eq!(pi.logical_of(2), Some(0));
    }

    #[test]
    fn swap_two_empty_sites_is_noop() {
        let mut pi = Mapping::identity(1, 3);
        pi.apply_swap(1, 2);
        assert_eq!(pi.phys_of(0), 0);
    }

    #[test]
    fn swaps_are_involutive() {
        let mut pi = Mapping::identity(3, 4);
        let before = pi.clone();
        pi.apply_swap(1, 3);
        pi.apply_swap(1, 3);
        assert_eq!(pi, before);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn non_injective_assignment_panics() {
        Mapping::from_assignment(vec![0, 0], 3);
    }

    #[test]
    fn random_mapping_is_seeded_and_injective() {
        let device = Device::grid(3, 3);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let a = InitialMapping::Random { seed: 7 }.build(&c, &device);
        let b = InitialMapping::Random { seed: 7 }.build(&c, &device);
        assert_eq!(a, b);
        let mut seen = std::collections::BTreeSet::new();
        for l in 0..5 {
            assert!(seen.insert(a.phys_of(l)));
        }
    }

    #[test]
    fn dense_layout_places_heavy_pairs_adjacent() {
        let device = Device::grid(3, 3);
        let mut c = Circuit::new(3);
        for _ in 0..5 {
            c.cx(0, 1);
        }
        c.cx(1, 2);
        let pi = InitialMapping::DenseLayout.build(&c, &device);
        // The heavy pair (0,1) must land on coupled sites.
        assert!(device.graph().are_adjacent(pi.phys_of(0), pi.phys_of(1)));
        // The light pair should still be close.
        assert!(device.distance(pi.phys_of(1), pi.phys_of(2)) <= 2);
    }

    #[test]
    fn dense_layout_is_injective_and_total() {
        let device = Device::ibm_q20_tokyo();
        let mut c = Circuit::new(8);
        for i in 0..7 {
            c.cx(i, i + 1);
        }
        let pi = InitialMapping::DenseLayout.build(&c, &device);
        let mut seen = std::collections::BTreeSet::new();
        for l in 0..8 {
            assert!(pi.phys_of(l) < 20);
            assert!(seen.insert(pi.phys_of(l)));
        }
    }

    #[test]
    fn dense_layout_handles_interaction_free_circuits() {
        let device = Device::linear(4);
        let mut c = Circuit::new(3);
        c.h(0);
        c.h(1);
        let pi = InitialMapping::DenseLayout.build(&c, &device);
        let mut seen = std::collections::BTreeSet::new();
        for l in 0..3 {
            assert!(seen.insert(pi.phys_of(l)));
        }
    }

    #[test]
    fn fixed_mapping() {
        let device = Device::linear(4);
        let c = Circuit::new(2);
        let pi = InitialMapping::Fixed(vec![3, 1]).build(&c, &device);
        assert_eq!(pi.phys_of(0), 3);
        assert_eq!(pi.phys_of(1), 1);
    }
}
