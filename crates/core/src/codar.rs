//! The CODAR remapping algorithm (paper Sec. IV-C, Fig. 4).
//!
//! CODAR simulates the execution timeline while it routes. At each event
//! time it:
//!
//! 1. collects the commutative-front (CF) gates of the remaining input,
//! 2. launches every CF gate that is *lock free* (all operand qubits
//!    free) and coupling-compliant, updating the qubit locks with the
//!    gate's duration,
//! 3. for the remaining (non-adjacent) CF two-qubit gates, gathers the
//!    lock-free edges adjacent to their endpoints as candidate SWAPs and
//!    greedily inserts the highest-priority SWAP while any candidate has
//!    positive `Hbasic`,
//!
//! then advances the clock to the next lock release. When nothing can be
//! launched and all qubits are free (the paper's "deadlock"), a SWAP is
//! forced; we pick, among the best-priority SWAPs, one that strictly
//! shortens the oldest blocked gate's distance, which guarantees
//! termination (the paper forces "a SWAP with the highest priority"
//! without tie-breaking, which can oscillate).

use crate::error::RouteError;
use crate::front::{CommutativeFront, DEFAULT_WINDOW};
use crate::heuristic::{blend_cal, cal_penalty, priority, SwapPriority};
use crate::locks::QubitLocks;
use crate::mapping::{InitialMapping, Mapping};
use crate::result::RoutedCircuit;
use crate::scratch::RouterScratch;
use codar_arch::{CalibrationSnapshot, Device, GateDurations};
use codar_circuit::schedule::{Schedule, Time};
use codar_circuit::{Circuit, GateKind};

/// Tuning knobs for [`CodarRouter`]. The defaults reproduce the paper's
/// configuration; the `enable_*` flags exist for the ablation studies.
#[derive(Debug, Clone)]
pub struct CodarConfig {
    /// How the initial logical→physical mapping is chosen.
    pub initial_mapping: InitialMapping,
    /// Use commutativity detection for the front set (Sec. IV-B).
    /// Disabled, the front degrades to plain data dependence.
    pub enable_commutativity: bool,
    /// Use real gate durations for the qubit locks (Sec. IV-A).
    /// Disabled, every gate is treated as taking one cycle during
    /// routing (the duration-unaware assumption of prior work); the
    /// reported weighted depth still uses the true durations.
    pub enable_duration_awareness: bool,
    /// Use the fine-priority tie-break `Hfine` (Sec. IV-D).
    pub enable_hfine: bool,
    /// Per-qubit lookahead window of the CF scan.
    pub window: usize,
    /// Weight of the normalized per-edge calibration error blended
    /// into the SWAP priority (the `codar-cal` variant). Takes effect
    /// only when a [`CalibrationSnapshot`] is attached via
    /// [`CodarRouter::with_snapshot`]; `0.0` reduces **byte-
    /// identically** to duration-only CODAR (the differential tests
    /// pin this). `alpha ≤ 1` re-orders distance ties toward
    /// low-error edges; larger values trade distance progress for
    /// reliability.
    pub cal_alpha: f64,
}

impl Default for CodarConfig {
    fn default() -> Self {
        CodarConfig {
            initial_mapping: InitialMapping::default(),
            enable_commutativity: true,
            enable_duration_awareness: true,
            enable_hfine: true,
            window: DEFAULT_WINDOW,
            cal_alpha: 0.0,
        }
    }
}

/// The CODAR router bound to a (borrowed) device.
///
/// The router holds `&Device` rather than a clone: constructing one is
/// free, and the engine can stamp out a router per job without copying
/// distance matrices around.
///
/// # Examples
///
/// ```
/// use codar_arch::Device;
/// use codar_circuit::Circuit;
/// use codar_router::CodarRouter;
///
/// # fn main() -> Result<(), codar_router::RouteError> {
/// use codar_router::Mapping;
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 2); // non-adjacent on a line under the identity placement
/// let device = Device::linear(3);
/// let routed = CodarRouter::new(&device)
///     .route_with_mapping(&c, Mapping::identity(3, 3))?;
/// assert_eq!(routed.swaps_inserted, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CodarRouter<'d> {
    device: &'d Device,
    config: CodarConfig,
    /// Calibration snapshot backing the `codar-cal` variant; `None`
    /// routes exactly as the paper's duration-only CODAR.
    snapshot: Option<&'d CalibrationSnapshot>,
}

impl<'d> CodarRouter<'d> {
    /// Creates a router with the default (paper) configuration.
    pub fn new(device: &'d Device) -> Self {
        CodarRouter {
            device,
            config: CodarConfig::default(),
            snapshot: None,
        }
    }

    /// Creates a router with an explicit configuration.
    pub fn with_config(device: &'d Device, config: CodarConfig) -> Self {
        CodarRouter {
            device,
            config,
            snapshot: None,
        }
    }

    /// Attaches a calibration snapshot: candidate SWAPs are penalized
    /// by `cal_alpha ×` their edge's normalized two-qubit error (the
    /// `codar-cal` variant). With `cal_alpha = 0` the routed output is
    /// byte-identical to a snapshot-less router.
    #[must_use]
    pub fn with_snapshot(mut self, snapshot: &'d CalibrationSnapshot) -> Self {
        self.snapshot = Some(snapshot);
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &CodarConfig {
        &self.config
    }

    /// Routes `circuit`, producing a hardware-compliant physical circuit.
    ///
    /// # Errors
    ///
    /// * [`RouteError::TooManyQubits`] when the circuit needs more qubits
    ///   than the device has,
    /// * [`RouteError::UnsupportedGate`] when a unitary gate spans 3+
    ///   qubits (decompose first),
    /// * [`RouteError::Disconnected`] when a two-qubit gate's operands
    ///   sit in different components of the coupling graph.
    pub fn route(&self, circuit: &Circuit) -> Result<RoutedCircuit, RouteError> {
        self.route_scratch(circuit, &mut RouterScratch::new())
    }

    /// Routes `circuit` as [`CodarRouter::route`], reusing `scratch`.
    ///
    /// # Errors
    ///
    /// As for [`CodarRouter::route`].
    pub fn route_scratch(
        &self,
        circuit: &Circuit,
        scratch: &mut RouterScratch,
    ) -> Result<RoutedCircuit, RouteError> {
        validate(circuit, self.device)?;
        let pi0 = self
            .config
            .initial_mapping
            .build_scratch(circuit, self.device, scratch);
        self.route_with_scratch(circuit, pi0, scratch)
    }

    /// Routes `circuit` starting from an explicit initial mapping
    /// (used by the experiments to feed CODAR and SABRE identical
    /// initial placements).
    ///
    /// # Errors
    ///
    /// As for [`CodarRouter::route`].
    pub fn route_with_mapping(
        &self,
        circuit: &Circuit,
        initial: Mapping,
    ) -> Result<RoutedCircuit, RouteError> {
        self.route_with_scratch(circuit, initial, &mut RouterScratch::new())
    }

    /// Routes `circuit` from an explicit initial mapping, reusing the
    /// buffers in `scratch` — the hot path for bulk routing (one
    /// scratch per engine worker). Results are identical whether a
    /// scratch is fresh or reused.
    ///
    /// # Errors
    ///
    /// As for [`CodarRouter::route`].
    pub fn route_with_scratch(
        &self,
        circuit: &Circuit,
        initial: Mapping,
        scratch: &mut RouterScratch,
    ) -> Result<RoutedCircuit, RouteError> {
        validate(circuit, self.device)?;
        let device = self.device;
        let graph = device.graph();
        let dist = device.distances();
        let num_qubits = device.num_qubits();
        let layout = if self.config.enable_hfine {
            device.layout()
        } else {
            None
        };
        let uniform_tau;
        let route_tau: &GateDurations = if self.config.enable_duration_awareness {
            device.durations()
        } else {
            uniform_tau = GateDurations::uniform();
            &uniform_tau
        };
        let swap_dur = route_tau.of_kind(GateKind::Swap);
        scratch.begin_device(num_qubits);
        // Calibration blending (the `codar-cal` variant): precompute
        // the integer penalty of every coupling once per route call.
        // `cal_on = false` leaves the plain (unscaled) priority path
        // untouched; `alpha = 0` fills an all-zero table, which orders
        // candidates identically to the plain path by construction.
        let cal_on = self.snapshot.is_some();
        if let Some(snapshot) = self.snapshot {
            scratch.begin_calibration(num_qubits);
            let max_error = snapshot.max_edge_error();
            for &(a, b) in graph.edges() {
                let error = snapshot.edge_error(a, b).unwrap_or(max_error);
                scratch.cal_penalty[a * num_qubits + b] =
                    cal_penalty(self.config.cal_alpha, error, max_error);
            }
        }

        let mut pi = initial.clone();
        let mut locks = QubitLocks::new(num_qubits);
        let mut front = CommutativeFront::new(
            circuit,
            self.config.enable_commutativity,
            self.config.window,
        );
        let mut out = Circuit::with_bits(num_qubits, circuit.num_bits());
        let mut starts: Vec<Time> = Vec::with_capacity(circuit.len());
        let mut now: Time = 0;
        let mut swaps_inserted = 0usize;
        let mut inserted_swap_indices: Vec<usize> = Vec::new();

        while !front.is_done() {
            // Steps 1-2: launch every executable CF gate, to fixpoint.
            // The CF set is snapshotted into scratch so the front can
            // shrink while we iterate it.
            let mut launched = false;
            loop {
                scratch.cf.clear();
                scratch.cf.extend_from_slice(front.cf_gates(circuit));
                let mut launched_this_pass = false;
                for &g in &scratch.cf {
                    let gate = &circuit.gates()[g];
                    scratch.phys.clear();
                    scratch
                        .phys
                        .extend(gate.qubits.iter().map(|&q| pi.phys_of(q)));
                    if !locks.all_free(&scratch.phys, now) {
                        continue;
                    }
                    let executable = match gate.kind {
                        GateKind::Barrier => true,
                        _ if scratch.phys.len() == 2 => {
                            graph.are_adjacent(scratch.phys[0], scratch.phys[1])
                        }
                        _ => true, // 1-qubit operations
                    };
                    if !executable {
                        continue;
                    }
                    let dur = route_tau.of(gate);
                    for &p in &scratch.phys {
                        locks.acquire(p, now, dur);
                    }
                    let mut mapped = gate.clone();
                    mapped.qubits.copy_from_slice(&scratch.phys);
                    out.push(mapped);
                    starts.push(now);
                    front.emit(g, circuit);
                    launched_this_pass = true;
                }
                if !launched_this_pass {
                    break;
                }
                launched = true;
            }
            if front.is_done() {
                break;
            }

            // Step 3: greedy positive-priority SWAP insertion.
            scratch.cf_two_qubit.clear();
            for &g in front.cf_gates(circuit) {
                if circuit.gates()[g].is_two_qubit() {
                    scratch.cf_two_qubit.push(g);
                }
            }
            let mut swapped = false;
            loop {
                // Physical endpoint pairs of every CF 2-qubit gate (Eq. 1
                // sums over all of ICF), and the blocked (non-adjacent)
                // subset that actually needs routing.
                scratch.cf_pairs.clear();
                for &g in &scratch.cf_two_qubit {
                    let q = &circuit.gates()[g].qubits;
                    scratch.cf_pairs.push((pi.phys_of(q[0]), pi.phys_of(q[1])));
                }
                scratch.blocked.clear();
                for &(a, b) in &scratch.cf_pairs {
                    if !graph.are_adjacent(a, b) {
                        scratch.blocked.push((a, b));
                    }
                }
                if scratch.blocked.is_empty() {
                    break;
                }
                // Candidate SWAPs: lock-free edges touching a blocked
                // gate's endpoints, stamp-deduplicated in O(1) each.
                let stamp = scratch.next_stamp();
                scratch.candidates.clear();
                for bi in 0..scratch.blocked.len() {
                    let (pa, pb) = scratch.blocked[bi];
                    for &endpoint in &[pa, pb] {
                        for &nb in graph.neighbors(endpoint) {
                            let edge = (endpoint.min(nb), endpoint.max(nb));
                            let id = edge.0 * num_qubits + edge.1;
                            if locks.pair_free(edge.0, edge.1, now)
                                && scratch.edge_stamp[id] != stamp
                            {
                                scratch.edge_stamp[id] = stamp;
                                scratch.candidates.push(edge);
                            }
                        }
                    }
                }
                // Incremental scoring: index the CF pairs once, then
                // score each candidate on only the pairs it moves.
                scratch
                    .scorer
                    .begin_round(&scratch.cf_pairs, num_qubits, layout);
                let best = scratch
                    .candidates
                    .iter()
                    .map(|&edge| {
                        let p = scratch.scorer.priority(
                            edge,
                            &scratch.cf_pairs,
                            dist,
                            layout,
                            self.config.enable_hfine,
                        );
                        let p = if cal_on {
                            blend_cal(p, scratch.cal_penalty[edge.0 * num_qubits + edge.1])
                        } else {
                            p
                        };
                        (p, edge)
                    })
                    .max_by(|a, b| a.0.cmp(&b.0).then_with(|| b.1.cmp(&a.1)));
                match best {
                    Some((p, edge)) if p.basic > 0 => {
                        locks.acquire(edge.0, now, swap_dur);
                        locks.acquire(edge.1, now, swap_dur);
                        inserted_swap_indices.push(out.len());
                        out.add(GateKind::Swap, vec![edge.0, edge.1], vec![]);
                        starts.push(now);
                        pi.apply_swap(edge.0, edge.1);
                        swaps_inserted += 1;
                        swapped = true;
                    }
                    _ => break,
                }
            }

            if front.is_done() {
                break;
            }
            // Advance the clock; detect and break deadlocks.
            match locks.next_release_after(now) {
                Some(t) => now = t,
                None => {
                    if !launched && !swapped {
                        let penalties: &[i64] = if cal_on { &scratch.cal_penalty } else { &[] };
                        let edge = self.forced_swap(circuit, &mut front, &pi, penalties)?;
                        locks.acquire(edge.0, now, swap_dur);
                        locks.acquire(edge.1, now, swap_dur);
                        inserted_swap_indices.push(out.len());
                        out.add(GateKind::Swap, vec![edge.0, edge.1], vec![]);
                        starts.push(now);
                        pi.apply_swap(edge.0, edge.1);
                        swaps_inserted += 1;
                    }
                    // If we did launch zero-duration ops (barriers) the
                    // front shrank, so the loop still progresses.
                }
            }
        }

        let tau = device.durations();
        let schedule = Schedule::asap(&out, |g| tau.of(g));
        Ok(RoutedCircuit {
            weighted_depth: schedule.makespan,
            start_times: starts,
            circuit: out,
            swaps_inserted,
            inserted_swap_indices,
            initial_mapping: initial,
            final_mapping: pi,
            router: if cal_on { "codar-cal" } else { "codar" },
        })
    }

    /// Deadlock breaker: among lock-free edges adjacent to the oldest
    /// blocked CF gate's endpoints, pick the highest-priority SWAP that
    /// strictly reduces that gate's distance. `penalties` is the
    /// per-edge calibration table (empty = no blending), applied
    /// exactly as in the greedy phase so the `codar-cal` ordering is
    /// consistent across both insertion paths.
    fn forced_swap(
        &self,
        circuit: &Circuit,
        front: &mut CommutativeFront,
        pi: &Mapping,
        penalties: &[i64],
    ) -> Result<(usize, usize), RouteError> {
        let graph = self.device.graph();
        let dist = self.device.distances();
        let layout = if self.config.enable_hfine {
            self.device.layout()
        } else {
            None
        };
        let cf = front.cf_gates(circuit);
        let oldest = cf
            .iter()
            .copied()
            .find(|&g| {
                let gate = &circuit.gates()[g];
                gate.is_two_qubit()
                    && !graph.are_adjacent(pi.phys_of(gate.qubits[0]), pi.phys_of(gate.qubits[1]))
            })
            .expect("deadlock implies a blocked two-qubit CF gate");
        let gate = &circuit.gates()[oldest];
        let (pa, pb) = (pi.phys_of(gate.qubits[0]), pi.phys_of(gate.qubits[1]));
        if !dist.connected(pa, pb) {
            return Err(RouteError::Disconnected { a: pa, b: pb });
        }
        let d0 = dist.get(pa, pb);
        let mut best: Option<(SwapPriority, (usize, usize))> = None;
        for &endpoint in &[pa, pb] {
            let other = if endpoint == pa { pb } else { pa };
            for &nb in graph.neighbors(endpoint) {
                if dist.get(nb, other) >= d0 {
                    continue; // must strictly shorten the oldest gate
                }
                let edge = (endpoint.min(nb), endpoint.max(nb));
                let mut p = priority(edge, &[(pa, pb)], dist, layout, self.config.enable_hfine);
                if !penalties.is_empty() {
                    let n = self.device.num_qubits();
                    p = blend_cal(p, penalties[edge.0 * n + edge.1]);
                }
                if best.map_or(true, |(bp, be)| {
                    (p, std::cmp::Reverse(edge)) > (bp, std::cmp::Reverse(be))
                }) {
                    best = Some((p, edge));
                }
            }
        }
        Ok(best
            .expect("a connected pair always has a distance-reducing neighbor")
            .1)
    }
}

/// Shared input validation for the routers.
pub(crate) fn validate(circuit: &Circuit, device: &Device) -> Result<(), RouteError> {
    if circuit.num_qubits() > device.num_qubits() {
        return Err(RouteError::TooManyQubits {
            logical: circuit.num_qubits(),
            physical: device.num_qubits(),
        });
    }
    for gate in circuit.gates() {
        if gate.kind != GateKind::Barrier && gate.qubits.len() > 2 {
            return Err(RouteError::UnsupportedGate {
                gate: gate.to_string(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_coupling, check_equivalence};
    use codar_arch::Device;

    fn route_identity(device: &Device, circuit: &Circuit) -> RoutedCircuit {
        let config = CodarConfig {
            initial_mapping: InitialMapping::Identity,
            ..CodarConfig::default()
        };
        CodarRouter::with_config(device, config)
            .route(circuit)
            .unwrap()
    }

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let device = Device::linear(3);
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        let r = route_identity(&device, &c);
        assert_eq!(r.swaps_inserted, 0);
        assert_eq!(r.gate_count(), 3);
        check_coupling(&r.circuit, &device).unwrap();
        // weighted depth: h(1) + cx(2) + cx(2) serial on q1's chain = 5
        assert_eq!(r.weighted_depth, 5);
    }

    #[test]
    fn distant_gate_gets_routed() {
        let device = Device::linear(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let r = route_identity(&device, &c);
        assert!(r.swaps_inserted >= 2);
        check_coupling(&r.circuit, &device).unwrap();
        check_equivalence(&c, &r).unwrap();
    }

    #[test]
    fn paper_fig1_context_example() {
        // Line of 4: Q0-Q1-Q2-Q3. Program: T q2; CX q0,q3.
        // The SWAP must avoid busy q2: CODAR picks an edge not touching
        // Q2 at time 0 if one helps — here (Q0,Q1) or (Q3,Q2)... (Q3,Q2)
        // touches Q2 which is locked by the T for 1 cycle, while (Q0,Q1)
        // and... on a line the useful swaps are (0,1),(1,2),(2,3).
        // (1,2) and (2,3) touch Q2 (busy). (0,1) is free and reduces
        // distance: CODAR should start it at cycle 0.
        let device = Device::linear(4);
        let mut c = Circuit::new(4);
        c.t(2);
        c.cx(0, 3);
        let r = route_identity(&device, &c);
        check_coupling(&r.circuit, &device).unwrap();
        check_equivalence(&c, &r).unwrap();
        // First swap starts at cycle 0 in parallel with the T.
        let first_swap = r
            .circuit
            .gates()
            .iter()
            .position(|g| g.kind == GateKind::Swap)
            .unwrap();
        assert_eq!(r.start_times[first_swap], 0);
        let swap_gate = &r.circuit.gates()[first_swap];
        assert!(
            !swap_gate.qubits.contains(&2),
            "first SWAP must avoid the busy qubit Q2, got {swap_gate}"
        );
    }

    #[test]
    fn deadlock_is_broken() {
        // A ring where the only blocked gate needs a forced swap: craft a
        // situation with no positive swap: two gates pulling in exactly
        // opposite directions on a line.
        // Program: cx(0,2) and cx(2,0) variants... simpler: single gate
        // at distance 2 with all qubits free and symmetric pulls can
        // still find positive swaps, so emulate the paper's case by a
        // pair of crossing gates on a 4-line.
        let device = Device::linear(4);
        let mut c = Circuit::new(4);
        // cx(0,3) and cx(3,0)-style crossing pressure:
        c.cx(0, 3);
        c.cx(3, 0);
        c.cx(1, 2);
        let r = route_identity(&device, &c);
        check_coupling(&r.circuit, &device).unwrap();
        check_equivalence(&c, &r).unwrap();
    }

    #[test]
    fn barrier_and_measure_are_routed() {
        let device = Device::linear(3);
        let mut c = Circuit::new(3);
        c.h(0);
        c.barrier(vec![0, 1, 2]);
        c.cx(0, 2);
        c.measure(2, 0);
        let r = route_identity(&device, &c);
        check_coupling(&r.circuit, &device).unwrap();
        assert_eq!(r.circuit.count_kind(GateKind::Measure), 1);
        assert_eq!(r.circuit.count_kind(GateKind::Barrier), 1);
    }

    #[test]
    fn too_many_qubits_is_error() {
        let device = Device::linear(2);
        let c = Circuit::new(3);
        let err = CodarRouter::new(&device).route(&c).unwrap_err();
        assert!(matches!(err, RouteError::TooManyQubits { .. }));
    }

    #[test]
    fn three_qubit_gate_is_error() {
        let device = Device::linear(3);
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let err = CodarRouter::new(&device).route(&c).unwrap_err();
        assert!(matches!(err, RouteError::UnsupportedGate { .. }));
    }

    #[test]
    fn disconnected_device_is_error() {
        let graph = codar_arch::CouplingGraph::new(4, &[(0, 1), (2, 3)]);
        let device = Device::from_graph("split", graph);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let config = CodarConfig {
            initial_mapping: InitialMapping::Identity,
            ..CodarConfig::default()
        };
        let err = CodarRouter::with_config(&device, config)
            .route(&c)
            .unwrap_err();
        assert!(matches!(err, RouteError::Disconnected { .. }));
    }

    #[test]
    fn more_physical_than_logical_qubits() {
        let device = Device::grid(3, 3);
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(1, 2);
        c.cx(2, 3);
        c.cx(3, 0);
        let r = route_identity(&device, &c);
        check_coupling(&r.circuit, &device).unwrap();
        check_equivalence(&c, &r).unwrap();
    }

    #[test]
    fn duration_unaware_ablation_still_correct() {
        let device = Device::grid(2, 3);
        let mut c = Circuit::new(6);
        c.cx(0, 5);
        c.t(1);
        c.cx(2, 3);
        let config = CodarConfig {
            initial_mapping: InitialMapping::Identity,
            enable_duration_awareness: false,
            ..CodarConfig::default()
        };
        let r = CodarRouter::with_config(&device, config).route(&c).unwrap();
        check_coupling(&r.circuit, &device).unwrap();
        check_equivalence(&c, &r).unwrap();
    }

    #[test]
    fn no_commutativity_ablation_still_correct() {
        let device = Device::linear(4);
        let mut c = Circuit::new(4);
        c.cx(1, 3);
        c.cx(2, 3);
        c.cx(0, 3);
        let config = CodarConfig {
            initial_mapping: InitialMapping::Identity,
            enable_commutativity: false,
            ..CodarConfig::default()
        };
        let r = CodarRouter::with_config(&device, config).route(&c).unwrap();
        check_coupling(&r.circuit, &device).unwrap();
        check_equivalence(&c, &r).unwrap();
    }

    #[test]
    fn empty_circuit_routes_to_empty() {
        let device = Device::linear(2);
        let r = route_identity(&device, &Circuit::new(2));
        assert_eq!(r.gate_count(), 0);
        assert_eq!(r.weighted_depth, 0);
    }

    #[test]
    fn zero_alpha_with_snapshot_is_byte_identical_to_plain_codar() {
        use codar_arch::CalibrationSnapshot;
        let device = Device::ibm_q20_tokyo();
        let snapshot = CalibrationSnapshot::synthetic(&device, 11).drifted(4);
        let mut c = Circuit::new(8);
        for i in 0..8 {
            c.h(i);
            c.cx(i, (i + 3) % 8);
        }
        c.cx(0, 7);
        let config = CodarConfig {
            initial_mapping: InitialMapping::Identity,
            ..CodarConfig::default()
        };
        let plain = CodarRouter::with_config(&device, config.clone())
            .route(&c)
            .unwrap();
        let cal = CodarRouter::with_config(&device, config)
            .with_snapshot(&snapshot)
            .route(&c)
            .unwrap();
        assert_eq!(plain.circuit.gates(), cal.circuit.gates());
        assert_eq!(plain.start_times, cal.start_times);
        assert_eq!(plain.weighted_depth, cal.weighted_depth);
        assert_eq!(plain.final_mapping, cal.final_mapping);
        assert_eq!(cal.router, "codar-cal");
    }

    #[test]
    fn positive_alpha_avoids_the_poisoned_edge_on_ties() {
        use codar_arch::{CalibrationSnapshot, EdgeCalibration, QubitCalibration};
        // A 2x2 grid: routing cx(0,3) can swap over either of two
        // symmetric edges. Poison one; alpha > 0 must pick the other.
        let device = Device::grid(2, 2);
        let qubit = QubitCalibration {
            t1_us: 0.0,
            t2_us: 0.0,
            readout_error: 0.01,
        };
        let edge = |a: usize, b: usize, error: f64| (a, b, EdgeCalibration { error, duration: 2 });
        let snapshot = CalibrationSnapshot::new(
            device.name(),
            1,
            0.0,
            0.001,
            vec![qubit; 4],
            vec![
                edge(0, 1, 0.25), // poisoned
                edge(0, 2, 0.002),
                edge(1, 3, 0.002),
                edge(2, 3, 0.002),
            ],
        )
        .unwrap();
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let config = CodarConfig {
            initial_mapping: InitialMapping::Identity,
            cal_alpha: 1.0,
            ..CodarConfig::default()
        };
        let routed = CodarRouter::with_config(&device, config)
            .with_snapshot(&snapshot)
            .route(&c)
            .unwrap();
        crate::verify::check_coupling(&routed.circuit, &device).unwrap();
        crate::verify::check_equivalence(&c, &routed).unwrap();
        for gate in routed.circuit.gates() {
            if gate.kind == GateKind::Swap {
                let (a, b) = (
                    gate.qubits[0].min(gate.qubits[1]),
                    gate.qubits[0].max(gate.qubits[1]),
                );
                assert_ne!((a, b), (0, 1), "swap routed over the poisoned edge");
            }
        }
    }

    #[test]
    fn start_times_match_asap() {
        // The router's own timeline must agree with re-scheduling its
        // output (it is an ASAP schedule by construction).
        let device = Device::linear(4);
        let mut c = Circuit::new(4);
        c.t(2);
        c.cx(0, 3);
        c.h(1);
        let r = route_identity(&device, &c);
        let tau = device.durations().clone();
        let s = Schedule::asap(&r.circuit, |g| tau.of(g));
        assert_eq!(s.start, r.start_times);
        assert_eq!(s.makespan, r.weighted_depth);
    }
}
