//! The output of a routing run.

use crate::mapping::Mapping;
use codar_circuit::schedule::Time;
use codar_circuit::{Circuit, GateKind};
use std::fmt;

/// A hardware-compliant circuit produced by a router, together with its
/// schedule and mapping bookkeeping.
///
/// The contained [`circuit`](RoutedCircuit::circuit) operates on
/// *physical* qubits; [`initial_mapping`](RoutedCircuit::initial_mapping)
/// records where each logical qubit started and
/// [`final_mapping`](RoutedCircuit::final_mapping) where it ended after
/// all inserted SWAPs.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The physical circuit (gate operands are physical qubit indices).
    pub circuit: Circuit,
    /// Start time of each gate in `circuit`, as scheduled by the router.
    pub start_times: Vec<Time>,
    /// The weighted depth (schedule makespan) under the device's
    /// duration map — the paper's headline metric.
    pub weighted_depth: Time,
    /// Number of SWAPs the router inserted.
    pub swaps_inserted: usize,
    /// Indices (into `circuit`) of the SWAPs the router inserted — as
    /// opposed to SWAP gates already present in the input program.
    /// Verification folds exactly these into the mapping.
    pub inserted_swap_indices: Vec<usize>,
    /// The logical→physical mapping before the first gate.
    pub initial_mapping: Mapping,
    /// The logical→physical mapping after the last gate.
    pub final_mapping: Mapping,
    /// Which router produced this result (`"codar"` / `"sabre"`).
    pub router: &'static str,
}

impl RoutedCircuit {
    /// Unweighted depth of the routed circuit.
    pub fn depth(&self) -> usize {
        self.circuit.depth()
    }

    /// Total gate count including inserted SWAPs.
    pub fn gate_count(&self) -> usize {
        self.circuit.len()
    }

    /// Count of SWAP gates present in the output.
    pub fn swap_gates(&self) -> usize {
        self.circuit.count_kind(GateKind::Swap)
    }
}

impl fmt::Display for RoutedCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates (+{} swaps), weighted depth {}",
            self.router,
            self.circuit.len(),
            self.swaps_inserted,
            self.weighted_depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.swap(1, 2);
        let r = RoutedCircuit {
            circuit: c,
            start_times: vec![0, 2],
            weighted_depth: 8,
            swaps_inserted: 1,
            inserted_swap_indices: vec![1],
            initial_mapping: Mapping::identity(3, 3),
            final_mapping: Mapping::identity(3, 3),
            router: "codar",
        };
        assert_eq!(r.gate_count(), 2);
        assert_eq!(r.swap_gates(), 1);
        assert_eq!(r.depth(), 2);
        let text = r.to_string();
        assert!(text.contains("codar"));
        assert!(text.contains("weighted depth 8"));
    }
}
