//! Validity and equivalence checks for routed circuits.
//!
//! Routing must (a) respect the coupling graph and (b) preserve the
//! program's semantics up to the tracked qubit permutation. These checks
//! are used throughout the test suite and are cheap enough to run after
//! every experiment.

use crate::error::RouteError;
use crate::mapping::Mapping;
use crate::result::RoutedCircuit;
use codar_arch::Device;
use codar_circuit::{commutes, Circuit, Gate, GateKind};

/// Checks that every two-qubit gate of `circuit` acts on a coupled pair.
///
/// # Errors
///
/// Returns [`RouteError::Verification`] naming the first offending gate.
pub fn check_coupling(circuit: &Circuit, device: &Device) -> Result<(), RouteError> {
    for (i, gate) in circuit.gates().iter().enumerate() {
        if gate.qubits.len() == 2
            && gate.kind != GateKind::Barrier
            && !device.graph().are_adjacent(gate.qubits[0], gate.qubits[1])
        {
            return Err(RouteError::Verification(format!(
                "gate #{i} ({gate}) acts on uncoupled physical qubits"
            )));
        }
    }
    Ok(())
}

/// Undoes the routing: walks the physical circuit, tracking the
/// physical→logical correspondence through the *router-inserted* SWAPs
/// (given by output index in `inserted`, ascending), and returns the
/// circuit re-expressed on logical qubits with those SWAPs removed.
/// SWAP gates that came from the input program are kept as gates.
///
/// # Errors
///
/// Returns [`RouteError::Verification`] if a non-SWAP gate touches a
/// physical qubit that holds no logical qubit.
pub fn reconstruct_logical(
    routed: &Circuit,
    initial: &Mapping,
    logical_qubits: usize,
    inserted: &[usize],
) -> Result<Circuit, RouteError> {
    let mut pi = initial.clone();
    let mut out = Circuit::with_bits(logical_qubits, routed.num_bits());
    let mut inserted_iter = inserted.iter().peekable();
    for (i, gate) in routed.gates().iter().enumerate() {
        if inserted_iter.peek() == Some(&&i) {
            inserted_iter.next();
            if gate.kind != GateKind::Swap {
                return Err(RouteError::Verification(format!(
                    "inserted-swap index {i} does not point at a SWAP (found {gate})"
                )));
            }
            pi.apply_swap(gate.qubits[0], gate.qubits[1]);
            continue;
        }
        let logical: Option<Vec<usize>> = gate.qubits.iter().map(|&p| pi.logical_of(p)).collect();
        let Some(logical) = logical else {
            // Barriers may legitimately cover unoccupied qubits; drop
            // those operands instead of failing.
            if gate.kind == GateKind::Barrier {
                let kept: Vec<usize> = gate
                    .qubits
                    .iter()
                    .filter_map(|&p| pi.logical_of(p))
                    .collect();
                out.push(Gate::barrier(kept));
                continue;
            }
            return Err(RouteError::Verification(format!(
                "gate {gate} touches an unoccupied physical qubit"
            )));
        };
        let mut mapped = gate.clone();
        mapped.qubits = logical;
        out.push(mapped);
    }
    Ok(out)
}

/// Checks that `routed` implements `original` exactly, up to
/// commutation-safe reordering and the tracked qubit movement.
///
/// The check reconstructs the logical circuit (see
/// [`reconstruct_logical`]), matches each original gate to its k-th
/// identical occurrence, and verifies that every *non-commuting* pair of
/// gates appears in the same relative order — which implies the two
/// circuits denote the same operator. O(n²) in gate count; intended for
/// tests and experiment validation, not hot loops.
///
/// # Errors
///
/// Returns [`RouteError::Verification`] describing the first mismatch.
pub fn check_equivalence(original: &Circuit, routed: &RoutedCircuit) -> Result<(), RouteError> {
    let logical = reconstruct_logical(
        &routed.circuit,
        &routed.initial_mapping,
        original.num_qubits(),
        &routed.inserted_swap_indices,
    )?;
    if logical.len() != original.len() {
        return Err(RouteError::Verification(format!(
            "gate count mismatch: original {} vs reconstructed {}",
            original.len(),
            logical.len()
        )));
    }
    // Match each reconstructed gate to an original occurrence.
    let key = |g: &Gate| {
        (
            g.kind,
            g.qubits.clone(),
            g.params.iter().map(|p| p.to_bits()).collect::<Vec<u64>>(),
            g.classical_bit,
        )
    };
    let mut occurrence: std::collections::HashMap<_, std::collections::VecDeque<usize>> =
        std::collections::HashMap::new();
    for (i, g) in original.gates().iter().enumerate() {
        occurrence.entry(key(g)).or_default().push_back(i);
    }
    // position_in_original[j] = index of the original gate that the j-th
    // reconstructed gate realizes.
    let mut position_in_original = Vec::with_capacity(logical.len());
    for g in logical.gates() {
        let Some(queue) = occurrence.get_mut(&key(g)) else {
            return Err(RouteError::Verification(format!(
                "reconstructed gate {g} does not occur in the original circuit"
            )));
        };
        let Some(idx) = queue.pop_front() else {
            return Err(RouteError::Verification(format!(
                "gate {g} occurs more often in the routed circuit"
            )));
        };
        position_in_original.push(idx);
    }
    // Every non-commuting pair must keep its original relative order.
    for j in 0..logical.len() {
        for k in j + 1..logical.len() {
            let a = &logical.gates()[j];
            let b = &logical.gates()[k];
            if !commutes(a, b) && position_in_original[j] > position_in_original[k] {
                return Err(RouteError::Verification(format!(
                    "non-commuting gates reordered: {a} (orig #{}) now precedes {b} (orig #{})",
                    position_in_original[j], position_in_original[k]
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_circuit::schedule::Time;

    fn wrap(original: &Circuit, physical: Circuit, initial: Mapping) -> RoutedCircuit {
        let _ = original;
        // In these hand-built fixtures every SWAP is router-inserted.
        let inserted: Vec<usize> = physical
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind == GateKind::Swap)
            .map(|(i, _)| i)
            .collect();
        RoutedCircuit {
            start_times: vec![0; physical.len()],
            weighted_depth: 0 as Time,
            swaps_inserted: inserted.len(),
            inserted_swap_indices: inserted,
            initial_mapping: initial.clone(),
            final_mapping: initial,
            circuit: physical,
            router: "test",
        }
    }

    #[test]
    fn coupling_check_flags_bad_gate() {
        let device = Device::linear(3);
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let err = check_coupling(&c, &device).unwrap_err();
        assert!(err.to_string().contains("uncoupled"));
        let mut ok = Circuit::new(3);
        ok.cx(0, 1);
        check_coupling(&ok, &device).unwrap();
    }

    #[test]
    fn reconstruction_inverts_a_swap() {
        // Physical: swap(1,2); cx(0,1)  with identity init
        // Logical q2 moves to phys 1, so cx(0,1) realizes cx(0,2).
        let mut phys = Circuit::new(3);
        phys.swap(1, 2);
        phys.cx(0, 1);
        let logical = reconstruct_logical(&phys, &Mapping::identity(3, 3), 3, &[0]).unwrap();
        assert_eq!(logical.len(), 1);
        assert_eq!(logical.gates()[0].qubits, vec![0, 2]);
    }

    #[test]
    fn user_swaps_survive_reconstruction() {
        // The same physical circuit, but the SWAP belongs to the input
        // program: it must stay a gate and the CX maps back unchanged.
        let mut phys = Circuit::new(3);
        phys.swap(1, 2);
        phys.cx(0, 1);
        let logical = reconstruct_logical(&phys, &Mapping::identity(3, 3), 3, &[]).unwrap();
        assert_eq!(logical.len(), 2);
        assert_eq!(logical.gates()[0].kind, GateKind::Swap);
        assert_eq!(logical.gates()[1].qubits, vec![0, 1]);
    }

    #[test]
    fn equivalence_accepts_faithful_routing() {
        let mut original = Circuit::new(3);
        original.cx(0, 2);
        original.h(0);
        let mut phys = Circuit::new(3);
        phys.swap(1, 2);
        phys.cx(0, 1);
        phys.h(0);
        let routed = wrap(&original, phys, Mapping::identity(3, 3));
        check_equivalence(&original, &routed).unwrap();
    }

    #[test]
    fn equivalence_accepts_commuting_reorder() {
        // Original: cx(1,0); cx(2,0)  (share target: commute)
        let mut original = Circuit::new(3);
        original.cx(1, 0);
        original.cx(2, 0);
        let mut phys = Circuit::new(3);
        phys.cx(2, 0); // reordered — allowed
        phys.cx(1, 0);
        let routed = wrap(&original, phys, Mapping::identity(3, 3));
        check_equivalence(&original, &routed).unwrap();
    }

    #[test]
    fn equivalence_rejects_noncommuting_reorder() {
        let mut original = Circuit::new(2);
        original.h(0);
        original.t(0);
        let mut phys = Circuit::new(2);
        phys.t(0);
        phys.h(0);
        let routed = wrap(&original, phys, Mapping::identity(2, 2));
        let err = check_equivalence(&original, &routed).unwrap_err();
        assert!(err.to_string().contains("reordered"));
    }

    #[test]
    fn equivalence_rejects_missing_gate() {
        let mut original = Circuit::new(2);
        original.h(0);
        original.t(0);
        let mut phys = Circuit::new(2);
        phys.h(0);
        let routed = wrap(&original, phys, Mapping::identity(2, 2));
        assert!(check_equivalence(&original, &routed).is_err());
    }

    #[test]
    fn equivalence_rejects_wrong_qubit() {
        let mut original = Circuit::new(2);
        original.h(0);
        let mut phys = Circuit::new(2);
        phys.h(1);
        let routed = wrap(&original, phys, Mapping::identity(2, 2));
        assert!(check_equivalence(&original, &routed).is_err());
    }

    #[test]
    fn unoccupied_qubit_in_gate_is_error() {
        // 1 logical on 2 physical; gate on phys 1 (empty) is invalid.
        let mut phys = Circuit::new(2);
        phys.h(1);
        let err = reconstruct_logical(&phys, &Mapping::identity(1, 2), 1, &[]).unwrap_err();
        assert!(err.to_string().contains("unoccupied"));
    }

    #[test]
    fn barrier_over_unoccupied_qubits_is_tolerated() {
        let mut phys = Circuit::new(3);
        phys.barrier(vec![0, 2]); // phys 2 unoccupied
        let logical = reconstruct_logical(&phys, &Mapping::identity(1, 3), 1, &[]).unwrap();
        assert_eq!(logical.gates()[0].qubits, vec![0]);
    }
}
