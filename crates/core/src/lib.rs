//! CODAR — COntext-sensitive and Duration-Aware Remapping (paper Sec. IV)
//! — and the SABRE baseline it is evaluated against.
//!
//! The qubit mapping problem: logical circuits apply two-qubit gates
//! between arbitrary qubit pairs, but NISQ hardware only couples certain
//! physical pairs. A *remapper* inserts SWAPs (and tracks the evolving
//! logical→physical mapping) so every two-qubit gate lands on a coupled
//! pair. CODAR additionally knows that
//!
//! 1. gates occupy qubits for *different durations* (a CX takes ~2× a
//!    single-qubit gate; a SWAP 6×), tracked by per-qubit **locks**
//!    ([`locks`]), and
//! 2. gates that *commute* with every predecessor can be considered
//!    logically executable, enlarging the lookahead window
//!    ([`front`], the **commutative front**),
//!
//! which lets it pick SWAPs that start earlier and overlap with the
//! program context, minimizing the *weighted depth* (execution time).
//!
//! # Modules
//!
//! * [`mapping`] — the dynamic logical↔physical mapping `π`,
//! * [`locks`] — qubit locks `tend` (Sec. IV-A),
//! * [`front`] — commutative-front maintenance (Sec. IV-B),
//! * [`heuristic`] — the SWAP priority `⟨Hbasic, Hfine⟩` (Sec. IV-D)
//!   and the calibration blend backing the `codar-cal` variant,
//! * [`codar`] — the CODAR event loop (Sec. IV-C, Fig. 4),
//! * [`sabre`] — the SABRE baseline (Li et al., ASPLOS 2019),
//! * [`scratch`] — reusable buffers keeping the router hot loops
//!   allocation-free in steady state,
//! * [`verify`] — routed-circuit validity and equivalence checks,
//! * [`result`] — the [`RoutedCircuit`] output type.
//!
//! # Examples
//!
//! ```
//! use codar_arch::Device;
//! use codar_circuit::Circuit;
//! use codar_router::{CodarRouter, SabreRouter};
//!
//! # fn main() -> Result<(), codar_router::RouteError> {
//! let mut qft4 = Circuit::new(4);
//! for i in 0..4 {
//!     qft4.h(i);
//!     for j in i + 1..4 {
//!         qft4.cu1(std::f64::consts::PI / (1 << (j - i)) as f64, j, i);
//!     }
//! }
//! let device = Device::linear(4);
//! let codar = CodarRouter::new(&device).route(&qft4)?;
//! let sabre = SabreRouter::new(&device).route(&qft4)?;
//! // Both results satisfy the coupling constraints...
//! codar_router::verify::check_coupling(&codar.circuit, &device)?;
//! codar_router::verify::check_coupling(&sabre.circuit, &device)?;
//! // ...and CODAR's schedule is no slower here.
//! assert!(codar.weighted_depth <= sabre.weighted_depth);
//! # Ok(())
//! # }
//! ```

pub mod codar;
pub mod error;
pub mod front;
pub mod greedy;
pub mod heuristic;
pub mod locks;
pub mod mapping;
pub mod result;
pub mod sabre;
pub mod scratch;
pub mod verify;

pub use codar::{CodarConfig, CodarRouter};
pub use error::RouteError;
pub use greedy::GreedyRouter;
pub use mapping::{InitialMapping, Mapping};
pub use result::RoutedCircuit;
pub use sabre::{SabreConfig, SabreRouter};
pub use scratch::RouterScratch;
