//! Qubit locks `tend` (paper Sec. IV-A).
//!
//! When a gate of duration `τg` starts at time `t` on a qubit, that
//! qubit's lock becomes `t + τg`: the qubit is busy before then. A qubit
//! is *free* at time `t` iff `tend ≤ t`. Locks are what make CODAR aware
//! of both the past program context (which qubits a started gate still
//! occupies) and the gate duration differences (shorter gates release
//! their qubits earlier).

use codar_circuit::schedule::Time;

/// Per-physical-qubit busy-until times.
///
/// # Examples
///
/// ```
/// use codar_router::locks::QubitLocks;
///
/// let mut locks = QubitLocks::new(4);
/// locks.acquire(2, 0, 2); // a CX occupying q2 during [0, 2)
/// assert!(!locks.is_free(2, 1));
/// assert!(locks.is_free(2, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QubitLocks {
    tend: Vec<Time>,
}

impl QubitLocks {
    /// All qubits free at time 0.
    pub fn new(num_qubits: usize) -> Self {
        QubitLocks {
            tend: vec![0; num_qubits],
        }
    }

    /// Number of qubits tracked.
    pub fn len(&self) -> usize {
        self.tend.len()
    }

    /// True when no qubits are tracked.
    pub fn is_empty(&self) -> bool {
        self.tend.is_empty()
    }

    /// The lock (busy-until time) of qubit `q`.
    #[inline]
    pub fn tend(&self, q: usize) -> Time {
        self.tend[q]
    }

    /// Whether qubit `q` is free at time `now`.
    #[inline]
    pub fn is_free(&self, q: usize, now: Time) -> bool {
        self.tend[q] <= now
    }

    /// Whether every qubit in `qs` is free at `now`.
    pub fn all_free(&self, qs: &[usize], now: Time) -> bool {
        qs.iter().all(|&q| self.is_free(q, now))
    }

    /// Whether both qubits of a pair are free at `now` — the swap
    /// candidate loops call this instead of building a 2-element slice
    /// for [`QubitLocks::all_free`].
    #[inline]
    pub fn pair_free(&self, a: usize, b: usize, now: Time) -> bool {
        self.tend[a] <= now && self.tend[b] <= now
    }

    /// Marks qubit `q` busy from `start` for `duration` cycles.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the qubit was still locked at `start` — that
    /// would mean two gates overlap on one qubit, violating the paper's
    /// core assumption.
    pub fn acquire(&mut self, q: usize, start: Time, duration: Time) {
        debug_assert!(
            self.tend[q] <= start,
            "qubit {q} is locked until {} but a gate starts at {start}",
            self.tend[q]
        );
        self.tend[q] = start + duration;
    }

    /// The earliest time strictly after `now` at which some lock
    /// expires, or `None` when everything is already free.
    pub fn next_release_after(&self, now: Time) -> Option<Time> {
        self.tend.iter().copied().filter(|&t| t > now).min()
    }

    /// The latest lock expiry — once all emitted gates are accounted,
    /// this is the schedule makespan.
    pub fn makespan(&self) -> Time {
        self.tend.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_locks_are_free() {
        let locks = QubitLocks::new(3);
        assert!(locks.all_free(&[0, 1, 2], 0));
        assert_eq!(locks.makespan(), 0);
        assert_eq!(locks.next_release_after(0), None);
    }

    #[test]
    fn acquire_locks_until_end() {
        let mut locks = QubitLocks::new(2);
        locks.acquire(0, 0, 6);
        assert!(!locks.is_free(0, 5));
        assert!(locks.is_free(0, 6));
        assert!(locks.is_free(1, 0));
        assert_eq!(locks.makespan(), 6);
    }

    #[test]
    fn paper_fig3_example() {
        // "Qubit lock tend of qubit q is 2 means q is busy until time 2."
        let mut locks = QubitLocks::new(1);
        locks.acquire(0, 0, 2);
        assert_eq!(locks.tend(0), 2);
        assert!(!locks.is_free(0, 0));
        assert!(!locks.is_free(0, 1));
        assert!(locks.is_free(0, 2));
    }

    #[test]
    fn duration_difference_frees_qubits_at_different_times() {
        // Paper Sec. IV-A: T on q1 (1 cycle) vs CX on q0,q2 (2 cycles).
        let mut locks = QubitLocks::new(3);
        locks.acquire(1, 0, 1); // T
        locks.acquire(0, 0, 2); // CX
        locks.acquire(2, 0, 2);
        assert!(locks.is_free(1, 1));
        assert!(!locks.is_free(2, 1));
        assert_eq!(locks.next_release_after(0), Some(1));
        assert_eq!(locks.next_release_after(1), Some(2));
    }

    #[test]
    fn pair_free_matches_all_free() {
        let mut locks = QubitLocks::new(3);
        locks.acquire(1, 0, 2);
        locks.acquire(2, 0, 5);
        for now in 0..6 {
            for a in 0..3 {
                for b in 0..3 {
                    assert_eq!(locks.pair_free(a, b, now), locks.all_free(&[a, b], now));
                }
            }
        }
    }

    #[test]
    fn sequential_acquire_after_release() {
        let mut locks = QubitLocks::new(1);
        locks.acquire(0, 0, 2);
        locks.acquire(0, 2, 1);
        assert_eq!(locks.tend(0), 3);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn overlapping_acquire_panics_in_debug() {
        let mut locks = QubitLocks::new(1);
        locks.acquire(0, 0, 5);
        locks.acquire(0, 3, 1);
    }
}
