//! Reusable working memory for the router hot loops.
//!
//! Both routers rebuild the same small vectors (CF snapshots, physical
//! endpoint pairs, candidate SWAP edges, BFS frontiers) on every
//! scheduler tick. [`RouterScratch`] owns those buffers so a router —
//! or an engine worker routing thousands of circuits — pays the
//! allocations once and reuses the capacity forever after: the inner
//! loops are allocation-free in steady state.
//!
//! One scratch serves every router ([`crate::CodarRouter`],
//! [`crate::SabreRouter`], [`crate::GreedyRouter`]) and any sequence of
//! circuits and devices: buffers grow on demand and are cleared (or
//! stamp-invalidated) at each use, never between calls. Reusing a
//! scratch across calls cannot change results — the scratch-threading
//! property tests route with fresh and shared scratches and assert
//! gate-for-gate identical outputs.
//!
//! Portfolio routing leans on this directly: one worker routes the
//! *same* circuit under every member variant back to back — CODAR,
//! calibration-blended CODAR, greedy, SABRE — through one scratch, with
//! no fresh allocation per member. That interleaving (router A dirties
//! buffers router B then reads) is exactly the pattern
//! [`RouterScratch`]'s clear-or-stamp discipline makes safe, and
//! the `interleaved_router_kinds_share_one_scratch` test pins it.

use crate::heuristic::{PairDistIndex, SwapScorer};
use std::collections::VecDeque;

/// Reusable buffers for the router inner loops (see the module docs).
///
/// # Examples
///
/// ```
/// use codar_arch::Device;
/// use codar_circuit::Circuit;
/// use codar_router::{CodarRouter, Mapping, RouterScratch};
///
/// # fn main() -> Result<(), codar_router::RouteError> {
/// let device = Device::linear(3);
/// let router = CodarRouter::new(&device);
/// let mut scratch = RouterScratch::new();
/// for _ in 0..3 {
///     let mut c = Circuit::new(3);
///     c.cx(0, 2);
///     let routed =
///         router.route_with_scratch(&c, Mapping::identity(3, 3), &mut scratch)?;
///     assert_eq!(routed.swaps_inserted, 1);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct RouterScratch {
    /// Physical operands of the gate under consideration.
    pub(crate) phys: Vec<usize>,
    /// Snapshot of the CF set (so the front can be mutated while
    /// iterating).
    pub(crate) cf: Vec<usize>,
    /// Two-qubit subset of the CF set.
    pub(crate) cf_two_qubit: Vec<usize>,
    /// Physical endpoint pairs of the CF two-qubit gates.
    pub(crate) cf_pairs: Vec<(usize, usize)>,
    /// The non-adjacent (blocked) subset of `cf_pairs`.
    pub(crate) blocked: Vec<(usize, usize)>,
    /// Candidate SWAP edges, in first-seen order.
    pub(crate) candidates: Vec<(usize, usize)>,
    /// Stamp per edge id (`a * N + b`): equals `stamp` iff the edge is
    /// already in `candidates` this round — O(1) dedup, no clearing.
    pub(crate) edge_stamp: Vec<u64>,
    /// Stamp per gate id: equals `stamp` iff the gate was visited by
    /// this round's extended-set BFS.
    pub(crate) gate_stamp: Vec<u64>,
    /// Current round number for the stamp vectors.
    pub(crate) stamp: u64,
    /// Incremental `⟨Hbasic, Hfine⟩` scorer (CODAR).
    pub(crate) scorer: SwapScorer,
    /// Per-edge calibration penalty (`a * N + b`, normalized `a < b`),
    /// refilled from the attached snapshot at the top of each
    /// calibration-aware route call; only edge slots are ever read.
    pub(crate) cal_penalty: Vec<i64>,
    /// Executable subset of the front layer (SABRE).
    pub(crate) executable: Vec<usize>,
    /// Extended (lookahead) set (SABRE).
    pub(crate) extended: Vec<usize>,
    /// BFS frontier for the extended-set scan (SABRE).
    pub(crate) bfs_queue: VecDeque<usize>,
    /// Per-qubit decay factors (SABRE).
    pub(crate) decay: Vec<f64>,
    /// Physical endpoint pairs of the front gates (SABRE).
    pub(crate) front_pairs: Vec<(usize, usize)>,
    /// Physical endpoint pairs of the extended-set gates (SABRE).
    pub(crate) extended_pairs: Vec<(usize, usize)>,
    /// Incremental distance sums over `front_pairs` (SABRE).
    pub(crate) front_index: PairDistIndex,
    /// Incremental distance sums over `extended_pairs` (SABRE).
    pub(crate) extended_index: PairDistIndex,
}

impl RouterScratch {
    /// An empty scratch; every buffer grows on first use.
    pub fn new() -> Self {
        RouterScratch::default()
    }

    /// Sizes the per-device buffers and starts a fresh stamp round.
    pub(crate) fn begin_device(&mut self, num_qubits: usize) {
        if self.edge_stamp.len() < num_qubits * num_qubits {
            self.edge_stamp.resize(num_qubits * num_qubits, 0);
        }
        if self.decay.len() < num_qubits {
            self.decay.resize(num_qubits, 1.0);
        }
    }

    /// Sizes the calibration-penalty table (called only by
    /// calibration-aware routes; the table is then refilled for every
    /// edge of the current device, so stale entries are never read).
    pub(crate) fn begin_calibration(&mut self, num_qubits: usize) {
        if self.cal_penalty.len() < num_qubits * num_qubits {
            self.cal_penalty.resize(num_qubits * num_qubits, 0);
        }
    }

    /// Sizes the per-circuit buffers.
    pub(crate) fn begin_circuit(&mut self, num_gates: usize) {
        if self.gate_stamp.len() < num_gates {
            self.gate_stamp.resize(num_gates, 0);
        }
    }

    /// Starts a new stamp round, making every `edge_stamp`/`gate_stamp`
    /// entry read as "unseen" without touching the vectors.
    #[inline]
    pub(crate) fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_invalidate_without_clearing() {
        let mut scratch = RouterScratch::new();
        scratch.begin_device(4);
        let s1 = scratch.next_stamp();
        scratch.edge_stamp[5] = s1;
        assert_eq!(scratch.edge_stamp[5], s1);
        let s2 = scratch.next_stamp();
        assert_ne!(scratch.edge_stamp[5], s2, "old stamp reads as unseen");
    }

    /// The portfolio access pattern: every router kind (including a
    /// calibration-aware route, which fills `cal_penalty`) interleaved
    /// through ONE scratch must produce the same circuits as fresh
    /// scratches per call — no router may read another's leftovers.
    #[test]
    fn interleaved_router_kinds_share_one_scratch() {
        use crate::{CodarRouter, GreedyRouter, Mapping, SabreRouter};
        use codar_arch::{CalibrationSnapshot, Device};
        use codar_circuit::Circuit;

        let device = Device::ibm_q20_tokyo();
        let snapshot = CalibrationSnapshot::synthetic(&device, 11).drifted(1);
        let mut circuit = Circuit::new(6);
        for i in 0..5 {
            circuit.h(i);
            circuit.cx(i, i + 1);
        }
        circuit.cx(0, 5);
        circuit.cx(2, 4);
        let initial = Mapping::identity(6, device.num_qubits());

        let mut shared = RouterScratch::new();
        for _round in 0..2 {
            let plain = CodarRouter::new(&device)
                .route_with_scratch(&circuit, initial.clone(), &mut shared)
                .unwrap();
            let cal = CodarRouter::new(&device)
                .with_snapshot(&snapshot)
                .route_with_scratch(&circuit, initial.clone(), &mut shared)
                .unwrap();
            let sabre = SabreRouter::new(&device)
                .route_with_scratch(&circuit, initial.clone(), &mut shared)
                .unwrap();
            let greedy = GreedyRouter::new(&device)
                .route_with_scratch(&circuit, initial.clone(), &mut shared)
                .unwrap();
            // Each result equals a fresh-scratch route of the same call.
            let fresh_plain = CodarRouter::new(&device)
                .route_with_scratch(&circuit, initial.clone(), &mut RouterScratch::new())
                .unwrap();
            assert_eq!(plain.circuit.gates(), fresh_plain.circuit.gates());
            let fresh_cal = CodarRouter::new(&device)
                .with_snapshot(&snapshot)
                .route_with_scratch(&circuit, initial.clone(), &mut RouterScratch::new())
                .unwrap();
            assert_eq!(cal.circuit.gates(), fresh_cal.circuit.gates());
            let fresh_sabre = SabreRouter::new(&device)
                .route_with_scratch(&circuit, initial.clone(), &mut RouterScratch::new())
                .unwrap();
            assert_eq!(sabre.circuit.gates(), fresh_sabre.circuit.gates());
            let fresh_greedy = GreedyRouter::new(&device)
                .route_with_scratch(&circuit, initial.clone(), &mut RouterScratch::new())
                .unwrap();
            assert_eq!(greedy.circuit.gates(), fresh_greedy.circuit.gates());
        }
    }

    #[test]
    fn buffers_grow_monotonically() {
        let mut scratch = RouterScratch::new();
        scratch.begin_device(3);
        scratch.begin_device(7);
        assert_eq!(scratch.edge_stamp.len(), 49);
        assert_eq!(scratch.decay.len(), 7);
        scratch.begin_device(2); // never shrinks
        assert_eq!(scratch.edge_stamp.len(), 49);
        scratch.begin_circuit(10);
        assert!(scratch.gate_stamp.len() >= 10);
    }
}
