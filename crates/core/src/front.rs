//! Commutative-front maintenance (paper Sec. IV-B, Definition 1).
//!
//! A pending gate is a *commutative forward (CF) gate* iff it commutes
//! with every pending gate that precedes it in program order. CF gates
//! can be moved to the head of the remaining sequence, i.e. they are
//! logically executable right now. Compared to a plain data-dependence
//! front layer, the CF set exposes more context to the SWAP search —
//! e.g. `CX q1,q3; CX q2,q3` are *both* CF because CNOTs sharing a
//! target commute.
//!
//! Implementation: pending gates are kept in per-qubit queues in program
//! order. A gate commutes trivially with anything it shares no qubit
//! with, so it is CF iff, in each of its queues, it commutes with every
//! earlier entry. A scan window bounds the per-queue lookahead so the
//! check stays O(window²) per queue.

use codar_circuit::{commutes, Circuit};
use std::collections::VecDeque;

/// Default per-qubit lookahead window for the CF scan.
pub const DEFAULT_WINDOW: usize = 16;

/// Tracks the pending portion of a circuit and computes its CF set.
///
/// The per-queue locally-CF scan is cached and invalidated only when a
/// gate is emitted from that queue, and the merged CF set itself is
/// cached between emissions, so the common case (repeated CF queries
/// between emissions) returns a slice without recomputing — or
/// allocating — anything. All buffers (per-queue caches, the qualify
/// counters, the merged set) are reused across recomputations, so a
/// routing loop in steady state allocates nothing here.
#[derive(Debug, Clone)]
pub struct CommutativeFront {
    queues: Vec<VecDeque<usize>>,
    pending: Vec<bool>,
    num_pending: usize,
    window: usize,
    commutativity: bool,
    // cache[q] = locally-CF gate indices of queue q, stale when dirty.
    cache: Vec<QueueCache>,
    // How many of a gate's queues qualify it; zeroed outside cf_gates.
    qualify: Vec<u32>,
    // The merged CF set, valid while `cf_valid`.
    cf: Vec<usize>,
    cf_valid: bool,
    // Pending gates with no qubit operands (always CF).
    zero_qubit: Vec<usize>,
}

/// Reusable per-queue locally-CF cache entry.
#[derive(Debug, Clone, Default)]
struct QueueCache {
    gates: Vec<usize>,
    valid: bool,
}

impl CommutativeFront {
    /// Builds the tracker with every gate of `circuit` pending.
    ///
    /// With `commutativity = false` the CF set degrades to the plain
    /// data-dependence front layer (the ablation case).
    pub fn new(circuit: &Circuit, commutativity: bool, window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        let mut queues = vec![VecDeque::new(); circuit.num_qubits()];
        for (i, gate) in circuit.gates().iter().enumerate() {
            for &q in &gate.qubits {
                queues[q].push_back(i);
            }
        }
        let cache = vec![QueueCache::default(); circuit.num_qubits()];
        let zero_qubit = (0..circuit.len())
            .filter(|&i| circuit.gates()[i].qubits.is_empty())
            .collect();
        CommutativeFront {
            queues,
            pending: vec![true; circuit.len()],
            num_pending: circuit.len(),
            window,
            commutativity,
            cache,
            qualify: vec![0; circuit.len()],
            cf: Vec::new(),
            cf_valid: false,
            zero_qubit,
        }
    }

    fn refresh_queue_cache(&mut self, q: usize, circuit: &Circuit) {
        let queue = &self.queues[q];
        let limit = queue.len().min(self.window);
        let entry = &mut self.cache[q];
        entry.gates.clear();
        for pos in 0..limit {
            let g = queue[pos];
            let locally_cf = if self.commutativity {
                (0..pos)
                    .all(|earlier| commutes(&circuit.gates()[queue[earlier]], &circuit.gates()[g]))
            } else {
                pos == 0
            };
            if locally_cf {
                entry.gates.push(g);
            }
        }
        entry.valid = true;
    }

    /// Number of gates not yet emitted.
    pub fn num_pending(&self) -> usize {
        self.num_pending
    }

    /// True when every gate has been emitted.
    pub fn is_done(&self) -> bool {
        self.num_pending == 0
    }

    /// Whether gate `i` is still pending.
    pub fn is_pending(&self, i: usize) -> bool {
        self.pending[i]
    }

    /// Computes the current CF set, in program order, returning a
    /// cached slice (recomputed only after an emission invalidated it).
    ///
    /// A gate qualifies iff it is *locally CF* in every queue it belongs
    /// to: within the scan window and commuting with every earlier entry
    /// of that queue. Gates with no qubit operands qualify trivially.
    pub fn cf_gates(&mut self, circuit: &Circuit) -> &[usize] {
        if self.cf_valid {
            return &self.cf;
        }
        // Refresh stale per-queue caches.
        for q in 0..self.queues.len() {
            if !self.cache[q].valid {
                self.refresh_queue_cache(q, circuit);
            }
        }
        // Count, per gate, how many of its queues expose it as locally
        // CF; it joins the front exactly when the count reaches its
        // operand count (each queue contributes at most one increment).
        self.cf.clear();
        for entry in &self.cache {
            for &g in &entry.gates {
                self.qualify[g] += 1;
                if self.qualify[g] as usize == circuit.gates()[g].qubits.len() {
                    self.cf.push(g);
                }
            }
        }
        // Zero the counters we touched (only those — no O(circuit) pass).
        for entry in &self.cache {
            for &g in &entry.gates {
                self.qualify[g] = 0;
            }
        }
        // Gates with no qubit operands (possible only for synthetic
        // barriers) are always CF.
        self.cf.extend_from_slice(&self.zero_qubit);
        self.cf.sort_unstable();
        self.cf_valid = true;
        &self.cf
    }

    /// Emits gate `i`: removes it from all queues (invalidating their
    /// CF caches and the merged set).
    ///
    /// # Panics
    ///
    /// Panics if the gate was already emitted.
    pub fn emit(&mut self, i: usize, circuit: &Circuit) {
        assert!(self.pending[i], "gate {i} was already emitted");
        self.pending[i] = false;
        self.num_pending -= 1;
        self.cf_valid = false;
        let qubits = &circuit.gates()[i].qubits;
        if qubits.is_empty() {
            let pos = self
                .zero_qubit
                .iter()
                .position(|&g| g == i)
                .expect("pending zero-operand gate must be tracked");
            self.zero_qubit.remove(pos);
            return;
        }
        for &q in qubits {
            let pos = self.queues[q]
                .iter()
                .position(|&g| g == i)
                .expect("pending gate must be in its qubit queues");
            self.queues[q].remove(pos);
            self.cache[q].valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_circuit::Circuit;

    fn cf(circuit: &Circuit, commutativity: bool) -> Vec<usize> {
        CommutativeFront::new(circuit, commutativity, DEFAULT_WINDOW)
            .cf_gates(circuit)
            .to_vec()
    }

    #[test]
    fn paper_example_shared_target() {
        // Sec. IV-B: "CX q1,q3 and CX q2,q3 in order ... both of the
        // gates are CF gates".
        let mut c = Circuit::new(4);
        c.cx(1, 3);
        c.cx(2, 3);
        assert_eq!(cf(&c, true), vec![0, 1]);
        // Without commutativity only the first is exposed.
        assert_eq!(cf(&c, false), vec![0]);
    }

    #[test]
    fn dependent_gates_are_hidden() {
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2); // control on q1 conflicts with target of gate 0
        assert_eq!(cf(&c, true), vec![0]);
    }

    #[test]
    fn disjoint_gates_all_front() {
        let mut c = Circuit::new(4);
        c.cx(0, 1);
        c.cx(2, 3);
        c.h(0); // blocked by gate 0
        assert_eq!(cf(&c, true), vec![0, 1]);
    }

    #[test]
    fn diagonal_chain_exposes_deep_gates() {
        let mut c = Circuit::new(3);
        c.t(0);
        c.rz(0.1, 0);
        c.cz(0, 1);
        c.cz(0, 2);
        // All four are mutually commuting (diagonal), so all are CF.
        assert_eq!(cf(&c, true), vec![0, 1, 2, 3]);
        assert_eq!(cf(&c, false), vec![0]);
    }

    #[test]
    fn emit_exposes_successors() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cx(0, 1);
        let mut front = CommutativeFront::new(&c, true, DEFAULT_WINDOW);
        assert_eq!(front.cf_gates(&c), vec![0]);
        front.emit(0, &c);
        assert_eq!(front.cf_gates(&c), vec![1]);
        front.emit(1, &c);
        assert!(front.is_done());
        assert!(front.cf_gates(&c).is_empty());
    }

    #[test]
    #[should_panic(expected = "already emitted")]
    fn double_emit_panics() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut front = CommutativeFront::new(&c, true, DEFAULT_WINDOW);
        front.emit(0, &c);
        front.emit(0, &c);
    }

    #[test]
    fn window_bounds_lookahead() {
        // 5 mutually commuting gates on one qubit, window 2: only the
        // first two are visible.
        let mut c = Circuit::new(1);
        for _ in 0..5 {
            c.t(0);
        }
        let mut front = CommutativeFront::new(&c, true, 2);
        assert_eq!(front.cf_gates(&c), vec![0, 1]);
    }

    #[test]
    fn barrier_fences_commutation() {
        let mut c = Circuit::new(2);
        c.t(0);
        c.barrier(vec![0, 1]);
        c.t(0); // commutes with gate 0 but the barrier blocks it
        assert_eq!(cf(&c, true), vec![0]);
    }

    #[test]
    fn identical_gates_commute() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(0);
        // h·h = identity: both exposable.
        assert_eq!(cf(&c, true), vec![0, 1]);
    }

    /// The seed implementation of the CF set, straight from
    /// Definition 1: rebuild the per-qubit queues from the pending set
    /// and merge with a hash-map qualify count. The cached
    /// [`CommutativeFront::cf_gates`] must return exactly this set
    /// after any emission sequence.
    fn naive_cf(circuit: &Circuit, front: &CommutativeFront) -> Vec<usize> {
        let mut queues = vec![Vec::new(); circuit.num_qubits()];
        for i in 0..circuit.len() {
            if front.is_pending(i) {
                for &q in &circuit.gates()[i].qubits {
                    queues[q].push(i);
                }
            }
        }
        let mut count: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for queue in &queues {
            let limit = queue.len().min(front.window);
            for pos in 0..limit {
                let g = queue[pos];
                let ok = if front.commutativity {
                    (0..pos).all(|e| commutes(&circuit.gates()[queue[e]], &circuit.gates()[g]))
                } else {
                    pos == 0
                };
                if ok {
                    *count.entry(g).or_insert(0) += 1;
                }
            }
        }
        let mut cf: Vec<usize> = count
            .into_iter()
            .filter(|&(g, c)| c == circuit.gates()[g].qubits.len())
            .map(|(g, _)| g)
            .collect();
        cf.extend(
            (0..circuit.len())
                .filter(|&i| front.is_pending(i) && circuit.gates()[i].qubits.is_empty()),
        );
        cf.sort_unstable();
        cf
    }

    #[test]
    fn cached_cf_matches_naive_reference_across_emissions() {
        // A mix of commuting chains, shared targets, barriers and
        // 1q gates, emitted in a scrambled (but legal) order.
        let mut c = Circuit::new(4);
        c.cx(1, 3);
        c.cx(2, 3);
        c.t(0);
        c.rz(0.25, 0);
        c.cz(0, 1);
        c.barrier(vec![0, 1, 2, 3]);
        c.h(2);
        c.cx(0, 2);
        c.cx(2, 0);
        c.measure(3, 0);
        for window in [1, 2, DEFAULT_WINDOW] {
            for commutativity in [true, false] {
                let mut front = CommutativeFront::new(&c, commutativity, window);
                while !front.is_done() {
                    let expected = naive_cf(&c, &front);
                    assert_eq!(
                        front.cf_gates(&c),
                        expected,
                        "window {window}, commutativity {commutativity}"
                    );
                    // Repeated query must serve the cache unchanged.
                    assert_eq!(front.cf_gates(&c), expected);
                    // Emit the last CF gate to scramble emission order.
                    let &g = front.cf_gates(&c).last().expect("nonempty while pending");
                    front.emit(g, &c);
                }
                assert!(front.cf_gates(&c).is_empty());
            }
        }
    }

    #[test]
    fn pending_bookkeeping() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(1);
        let mut front = CommutativeFront::new(&c, true, DEFAULT_WINDOW);
        assert_eq!(front.num_pending(), 2);
        assert!(front.is_pending(1));
        front.emit(1, &c);
        assert!(!front.is_pending(1));
        assert_eq!(front.num_pending(), 1);
    }
}
