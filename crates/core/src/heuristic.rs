//! The SWAP priority heuristic `⟨Hbasic, Hfine⟩` (paper Sec. IV-D).
//!
//! `Hbasic` (Eq. 1) is the total coupling-distance reduction a candidate
//! SWAP brings to the CF gates: `Σ_{g∈ICF} L(π,g) − L(π',g)`, where `L`
//! is the hop distance between the gate's two physical endpoints and
//! `π'` is the mapping after the SWAP. A SWAP with `Hbasic ≤ 0` brings
//! no benefit.
//!
//! `Hfine` (Eq. 2) breaks ties on 2-D lattices: it prefers SWAPs that
//! balance the vertical and horizontal distance of the remaining
//! two-qubit gates (`−|VD − HD|`), because a balanced gate has more
//! shortest Manhattan routes available and is less likely to be blocked
//! by a busy qubit (paper Fig. 6).

use codar_arch::{DistanceMatrix, Layout2d};

/// A candidate SWAP's priority; compared lexicographically
/// (`basic` first, then `fine`), exactly the paper's ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SwapPriority {
    /// `Hbasic` — total distance reduction over the CF gates.
    pub basic: i64,
    /// `Hfine` — negated total axis imbalance under the new mapping.
    pub fine: i64,
}

/// Remaps a physical endpoint through a candidate SWAP `(a, b)`.
#[inline]
fn through_swap(p: usize, swap: (usize, usize)) -> usize {
    if p == swap.0 {
        swap.1
    } else if p == swap.1 {
        swap.0
    } else {
        p
    }
}

/// Computes `Hbasic` (paper Eq. 1) for a candidate SWAP of physical
/// qubits `swap`, given the *physical endpoint pairs* of every CF
/// two-qubit gate under the current mapping.
pub fn h_basic(swap: (usize, usize), cf_pairs: &[(usize, usize)], dist: &DistanceMatrix) -> i64 {
    let mut total = 0i64;
    for &(pa, pb) in cf_pairs {
        let old = dist.get(pa, pb);
        let na = through_swap(pa, swap);
        let nb = through_swap(pb, swap);
        if na == pa && nb == pb {
            continue; // unaffected gate contributes 0
        }
        let new = dist.get(na, nb);
        total += old as i64 - new as i64;
    }
    total
}

/// Computes `Hfine` (paper Eq. 2) for a candidate SWAP: the negated sum
/// of `|VD − HD|` over the CF two-qubit gates under the new mapping.
///
/// Gates unaffected by the SWAP contribute equally to every candidate,
/// so including them preserves the paper's pairwise comparisons while
/// keeping the value well-defined when one SWAP serves several gates.
/// Returns 0 when the device has no 2-D layout.
pub fn h_fine(swap: (usize, usize), cf_pairs: &[(usize, usize)], layout: Option<&Layout2d>) -> i64 {
    let Some(layout) = layout else { return 0 };
    let mut total = 0i64;
    for &(pa, pb) in cf_pairs {
        let na = through_swap(pa, swap);
        let nb = through_swap(pb, swap);
        total -= layout.axis_imbalance(na, nb) as i64;
    }
    total
}

/// Computes the full priority of a candidate SWAP.
pub fn priority(
    swap: (usize, usize),
    cf_pairs: &[(usize, usize)],
    dist: &DistanceMatrix,
    layout: Option<&Layout2d>,
    use_fine: bool,
) -> SwapPriority {
    SwapPriority {
        basic: h_basic(swap, cf_pairs, dist),
        fine: if use_fine {
            h_fine(swap, cf_pairs, layout)
        } else {
            0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_arch::CouplingGraph;

    #[test]
    fn swap_toward_target_is_positive() {
        // line 0-1-2-3, gate between phys 0 and 3.
        let g = CouplingGraph::line(4);
        let d = DistanceMatrix::new(&g);
        let pairs = [(0usize, 3usize)];
        // Swapping (0,1) moves the q at 0 to 1: distance 3 -> 2.
        assert_eq!(h_basic((0, 1), &pairs, &d), 1);
        // Swapping (1,2) does not involve either endpoint: 0.
        assert_eq!(h_basic((1, 2), &pairs, &d), 0);
    }

    #[test]
    fn swap_away_is_negative() {
        let g = CouplingGraph::line(5);
        let d = DistanceMatrix::new(&g);
        let pairs = [(1usize, 3usize)];
        // Moving endpoint 1 to 0 increases distance 2 -> 3.
        assert_eq!(h_basic((0, 1), &pairs, &d), -1);
    }

    #[test]
    fn multiple_gates_accumulate() {
        let g = CouplingGraph::line(4);
        let d = DistanceMatrix::new(&g);
        // Two gates both benefit from moving phys 0 toward phys 2/3.
        let pairs = [(0usize, 2usize), (0usize, 3usize)];
        assert_eq!(h_basic((0, 1), &pairs, &d), 2);
    }

    #[test]
    fn swap_between_both_endpoints_is_zero() {
        let g = CouplingGraph::line(3);
        let d = DistanceMatrix::new(&g);
        // Gate (0,2): swapping 0 and 2 exchanges the endpoints; the
        // distance is unchanged.
        assert_eq!(h_basic((0, 2), &[(0, 2)], &d), 0);
    }

    #[test]
    fn fine_prefers_balanced_routes() {
        // 3x3 grid; gate endpoints at corners of the same row are
        // imbalanced (|VD-HD| = 2); moving one endpoint diagonally
        // balances it.
        let layout = Layout2d::grid(3, 3);
        // phys 0=(0,0), 2=(0,2), 5=(1,2)
        // Gate (0,2): imbalance |0-2| = 2 -> Hfine = -2.
        assert_eq!(h_fine((8, 7), &[(0, 2)], Some(&layout)), -2);
        // Swap (2,5): gate becomes (0,5): |1-2| = 1 -> Hfine = -1 (better).
        assert_eq!(h_fine((2, 5), &[(0, 2)], Some(&layout)), -1);
    }

    #[test]
    fn no_layout_fine_is_zero() {
        assert_eq!(h_fine((0, 1), &[(0, 1)], None), 0);
    }

    #[test]
    fn priority_orders_lexicographically() {
        let a = SwapPriority { basic: 2, fine: -5 };
        let b = SwapPriority {
            basic: 1,
            fine: 100,
        };
        let c = SwapPriority { basic: 2, fine: -3 };
        assert!(a > b);
        assert!(c > a);
    }

    #[test]
    fn priority_combines_both() {
        let g = CouplingGraph::grid(3, 3);
        let d = DistanceMatrix::new(&g);
        let layout = Layout2d::grid(3, 3);
        let p = priority((0, 1), &[(0, 8)], &d, Some(&layout), true);
        assert_eq!(p.basic, 1);
        // New pair (1,8): VD 2, HD 1 -> fine -1.
        assert_eq!(p.fine, -1);
        let p0 = priority((0, 1), &[(0, 8)], &d, Some(&layout), false);
        assert_eq!(p0.fine, 0);
    }
}
