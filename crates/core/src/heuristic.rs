//! The SWAP priority heuristic `⟨Hbasic, Hfine⟩` (paper Sec. IV-D).
//!
//! `Hbasic` (Eq. 1) is the total coupling-distance reduction a candidate
//! SWAP brings to the CF gates: `Σ_{g∈ICF} L(π,g) − L(π',g)`, where `L`
//! is the hop distance between the gate's two physical endpoints and
//! `π'` is the mapping after the SWAP. A SWAP with `Hbasic ≤ 0` brings
//! no benefit.
//!
//! `Hfine` (Eq. 2) breaks ties on 2-D lattices: it prefers SWAPs that
//! balance the vertical and horizontal distance of the remaining
//! two-qubit gates (`−|VD − HD|`), because a balanced gate has more
//! shortest Manhattan routes available and is less likely to be blocked
//! by a busy qubit (paper Fig. 6).

use codar_arch::{DistanceMatrix, Layout2d};

/// A candidate SWAP's priority; compared lexicographically
/// (`basic` first, then `fine`), exactly the paper's ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SwapPriority {
    /// `Hbasic` — total distance reduction over the CF gates.
    pub basic: i64,
    /// `Hfine` — negated total axis imbalance under the new mapping.
    pub fine: i64,
}

/// Fixed-point scale of the calibration-blended priority: with a
/// calibration snapshot attached, `Hbasic` is multiplied by this scale
/// and the candidate edge's penalty (`alpha × normalized error ×
/// CAL_SCALE`, see [`cal_penalty`]) subtracted. Because the scale is a
/// positive constant, a zero penalty table (no snapshot, or
/// `cal_alpha = 0`) orders candidates **exactly** as plain `Hbasic`
/// does — the `alpha = 0` ≡ CODAR reduction the differential tests
/// pin. A power of two keeps the `f64 → i64` rounding exact.
pub const CAL_SCALE: i64 = 1 << 20;

/// The integer penalty of routing a SWAP over an edge with calibration
/// error `error`, normalized by the snapshot's worst edge `max_error`
/// and weighted by `alpha`. Zero when the snapshot is edgeless
/// (`max_error = 0`).
pub fn cal_penalty(alpha: f64, error: f64, max_error: f64) -> i64 {
    if max_error <= 0.0 {
        return 0;
    }
    (alpha * (error / max_error) * CAL_SCALE as f64).round() as i64
}

/// Blends a calibration penalty into a priority: `Hbasic` moves to the
/// `CAL_SCALE` fixed-point grid and the penalty lands between grid
/// points, so for `alpha ≤ 1` calibration only re-orders candidates
/// whose distance reduction ties (and can veto a `+1` reduction over
/// the very worst edge); larger `alpha` trades real distance progress
/// for reliability.
#[inline]
pub fn blend_cal(p: SwapPriority, penalty: i64) -> SwapPriority {
    SwapPriority {
        basic: p.basic * CAL_SCALE - penalty,
        fine: p.fine,
    }
}

/// Remaps a physical endpoint through a candidate SWAP `(a, b)`.
#[inline]
fn through_swap(p: usize, swap: (usize, usize)) -> usize {
    if p == swap.0 {
        swap.1
    } else if p == swap.1 {
        swap.0
    } else {
        p
    }
}

/// Computes `Hbasic` (paper Eq. 1) for a candidate SWAP of physical
/// qubits `swap`, given the *physical endpoint pairs* of every CF
/// two-qubit gate under the current mapping.
pub fn h_basic(swap: (usize, usize), cf_pairs: &[(usize, usize)], dist: &DistanceMatrix) -> i64 {
    let mut total = 0i64;
    for &(pa, pb) in cf_pairs {
        let old = dist.get(pa, pb);
        let na = through_swap(pa, swap);
        let nb = through_swap(pb, swap);
        if na == pa && nb == pb {
            continue; // unaffected gate contributes 0
        }
        let new = dist.get(na, nb);
        total += old as i64 - new as i64;
    }
    total
}

/// Computes `Hfine` (paper Eq. 2) for a candidate SWAP: the negated sum
/// of `|VD − HD|` over the CF two-qubit gates under the new mapping.
///
/// Gates unaffected by the SWAP contribute equally to every candidate,
/// so including them preserves the paper's pairwise comparisons while
/// keeping the value well-defined when one SWAP serves several gates.
/// Returns 0 when the device has no 2-D layout.
pub fn h_fine(swap: (usize, usize), cf_pairs: &[(usize, usize)], layout: Option<&Layout2d>) -> i64 {
    let Some(layout) = layout else { return 0 };
    let mut total = 0i64;
    for &(pa, pb) in cf_pairs {
        let na = through_swap(pa, swap);
        let nb = through_swap(pb, swap);
        total -= layout.axis_imbalance(na, nb) as i64;
    }
    total
}

/// Computes the full priority of a candidate SWAP.
pub fn priority(
    swap: (usize, usize),
    cf_pairs: &[(usize, usize)],
    dist: &DistanceMatrix,
    layout: Option<&Layout2d>,
    use_fine: bool,
) -> SwapPriority {
    SwapPriority {
        basic: h_basic(swap, cf_pairs, dist),
        fine: if use_fine {
            h_fine(swap, cf_pairs, layout)
        } else {
            0
        },
    }
}

/// Incremental SWAP scorer: priority-per-candidate in `O(pairs touching
/// the candidate's endpoints)` instead of `O(|ICF|)`.
///
/// [`priority`] re-walks every CF pair for every candidate edge, even
/// though a SWAP only moves its own two endpoints — every pair touching
/// neither endpoint contributes a candidate-independent constant. The
/// scorer indexes the CF pairs by physical endpoint once per scoring
/// round ([`SwapScorer::begin_round`]) and precomputes that constant
/// (the `Hfine` base term), so [`SwapScorer::priority`] visits only the
/// affected pairs. All arithmetic is the same integer arithmetic as the
/// reference functions, so the returned [`SwapPriority`] is **equal**,
/// not merely equivalent — `max_by` with the edge tie-break picks the
/// identical SWAP (the property tests assert this).
///
/// The internal buffers are reused across rounds; steady-state scoring
/// allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct SwapScorer {
    /// `pairs_of[p]` = indices into the round's `cf_pairs` of the pairs
    /// with `p` as an endpoint. Only entries in `touched` are dirty.
    pairs_of: Vec<Vec<u32>>,
    touched: Vec<u32>,
    /// Candidate-independent `Hfine` term: `-Σ imbalance(pa, pb)` over
    /// every CF pair under the *current* mapping.
    fine_base: i64,
    /// Shape of the last `begin_round` (pair count, layout present) —
    /// debug-asserted by `priority` to catch contract violations.
    round: (usize, bool),
}

impl SwapScorer {
    /// An empty scorer; buffers grow on first use.
    pub fn new() -> Self {
        SwapScorer::default()
    }

    /// Indexes `cf_pairs` by endpoint and precomputes the fine-term
    /// base. Call once per scoring round — the CF pair set changes
    /// after every accepted SWAP. Pass the layout only when `Hfine` is
    /// enabled (mirroring [`priority`]'s `use_fine`/`layout` contract).
    pub fn begin_round(
        &mut self,
        cf_pairs: &[(usize, usize)],
        num_qubits: usize,
        layout: Option<&Layout2d>,
    ) {
        for &q in &self.touched {
            self.pairs_of[q as usize].clear();
        }
        self.touched.clear();
        if self.pairs_of.len() < num_qubits {
            self.pairs_of.resize_with(num_qubits, Vec::new);
        }
        self.fine_base = 0;
        self.round = (cf_pairs.len(), layout.is_some());
        for (i, &(pa, pb)) in cf_pairs.iter().enumerate() {
            if self.pairs_of[pa].is_empty() {
                self.touched.push(pa as u32);
            }
            self.pairs_of[pa].push(i as u32);
            if pb != pa {
                if self.pairs_of[pb].is_empty() {
                    self.touched.push(pb as u32);
                }
                self.pairs_of[pb].push(i as u32);
            }
            if let Some(layout) = layout {
                self.fine_base -= layout.axis_imbalance(pa, pb) as i64;
            }
        }
    }

    /// Computes the same [`SwapPriority`] as [`priority`] for `swap`,
    /// visiting only the CF pairs that touch its endpoints.
    ///
    /// `cf_pairs` and `layout` must be the slices passed to the last
    /// [`SwapScorer::begin_round`].
    pub fn priority(
        &self,
        swap: (usize, usize),
        cf_pairs: &[(usize, usize)],
        dist: &DistanceMatrix,
        layout: Option<&Layout2d>,
        use_fine: bool,
    ) -> SwapPriority {
        debug_assert_eq!(
            self.round,
            (cf_pairs.len(), layout.is_some()),
            "priority() called with different cf_pairs/layout than the last begin_round()"
        );
        let mut basic = 0i64;
        let mut fine_delta = 0i64;
        let mut visit = |i: u32| {
            let (pa, pb) = cf_pairs[i as usize];
            let na = through_swap(pa, swap);
            let nb = through_swap(pb, swap);
            basic += dist.get(pa, pb) as i64 - dist.get(na, nb) as i64;
            if let Some(layout) = layout {
                fine_delta +=
                    layout.axis_imbalance(pa, pb) as i64 - layout.axis_imbalance(na, nb) as i64;
            }
        };
        if let Some(list) = self.pairs_of.get(swap.0) {
            for &i in list {
                visit(i);
            }
        }
        if let Some(list) = self.pairs_of.get(swap.1) {
            for &i in list {
                let (pa, pb) = cf_pairs[i as usize];
                if pa == swap.0 || pb == swap.0 {
                    continue; // already visited via the other endpoint
                }
                visit(i);
            }
        }
        SwapPriority {
            basic,
            fine: if use_fine && layout.is_some() {
                self.fine_base + fine_delta
            } else {
                0
            },
        }
    }
}

/// Endpoint-indexed pair distances with an incremental
/// "total distance if this SWAP were applied" query — the SABRE analog
/// of [`SwapScorer`]. The base sum is held exactly (in `u64`), so
/// [`PairDistIndex::sum_through`] returns the same integer the
/// reference per-candidate re-summation produces.
#[derive(Debug, Clone, Default)]
pub struct PairDistIndex {
    pairs_of: Vec<Vec<u32>>,
    touched: Vec<u32>,
    base: u64,
    /// Pair count of the last `begin_round`, debug-asserted by
    /// `sum_through` to catch contract violations.
    round_len: usize,
}

impl PairDistIndex {
    /// An empty index; buffers grow on first use.
    pub fn new() -> Self {
        PairDistIndex::default()
    }

    /// Indexes `pairs` by endpoint and sums their current distances.
    pub fn begin_round(
        &mut self,
        pairs: &[(usize, usize)],
        dist: &DistanceMatrix,
        num_qubits: usize,
    ) {
        for &q in &self.touched {
            self.pairs_of[q as usize].clear();
        }
        self.touched.clear();
        if self.pairs_of.len() < num_qubits {
            self.pairs_of.resize_with(num_qubits, Vec::new);
        }
        self.base = 0;
        self.round_len = pairs.len();
        for (i, &(pa, pb)) in pairs.iter().enumerate() {
            if self.pairs_of[pa].is_empty() {
                self.touched.push(pa as u32);
            }
            self.pairs_of[pa].push(i as u32);
            if pb != pa {
                if self.pairs_of[pb].is_empty() {
                    self.touched.push(pb as u32);
                }
                self.pairs_of[pb].push(i as u32);
            }
            self.base += dist.get(pa, pb) as u64;
        }
    }

    /// Total pair distance under the mapping that `swap` would produce:
    /// the cached base plus the delta of the affected pairs only.
    pub fn sum_through(
        &self,
        swap: (usize, usize),
        pairs: &[(usize, usize)],
        dist: &DistanceMatrix,
    ) -> u64 {
        debug_assert_eq!(
            self.round_len,
            pairs.len(),
            "sum_through() called with different pairs than the last begin_round()"
        );
        let mut delta = 0i64;
        let mut visit = |i: u32| {
            let (pa, pb) = pairs[i as usize];
            let na = through_swap(pa, swap);
            let nb = through_swap(pb, swap);
            delta += dist.get(na, nb) as i64 - dist.get(pa, pb) as i64;
        };
        if let Some(list) = self.pairs_of.get(swap.0) {
            for &i in list {
                visit(i);
            }
        }
        if let Some(list) = self.pairs_of.get(swap.1) {
            for &i in list {
                let (pa, pb) = pairs[i as usize];
                if pa == swap.0 || pb == swap.0 {
                    continue;
                }
                visit(i);
            }
        }
        (self.base as i64 + delta) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codar_arch::CouplingGraph;

    #[test]
    fn swap_toward_target_is_positive() {
        // line 0-1-2-3, gate between phys 0 and 3.
        let g = CouplingGraph::line(4);
        let d = DistanceMatrix::new(&g);
        let pairs = [(0usize, 3usize)];
        // Swapping (0,1) moves the q at 0 to 1: distance 3 -> 2.
        assert_eq!(h_basic((0, 1), &pairs, &d), 1);
        // Swapping (1,2) does not involve either endpoint: 0.
        assert_eq!(h_basic((1, 2), &pairs, &d), 0);
    }

    #[test]
    fn swap_away_is_negative() {
        let g = CouplingGraph::line(5);
        let d = DistanceMatrix::new(&g);
        let pairs = [(1usize, 3usize)];
        // Moving endpoint 1 to 0 increases distance 2 -> 3.
        assert_eq!(h_basic((0, 1), &pairs, &d), -1);
    }

    #[test]
    fn multiple_gates_accumulate() {
        let g = CouplingGraph::line(4);
        let d = DistanceMatrix::new(&g);
        // Two gates both benefit from moving phys 0 toward phys 2/3.
        let pairs = [(0usize, 2usize), (0usize, 3usize)];
        assert_eq!(h_basic((0, 1), &pairs, &d), 2);
    }

    #[test]
    fn swap_between_both_endpoints_is_zero() {
        let g = CouplingGraph::line(3);
        let d = DistanceMatrix::new(&g);
        // Gate (0,2): swapping 0 and 2 exchanges the endpoints; the
        // distance is unchanged.
        assert_eq!(h_basic((0, 2), &[(0, 2)], &d), 0);
    }

    #[test]
    fn fine_prefers_balanced_routes() {
        // 3x3 grid; gate endpoints at corners of the same row are
        // imbalanced (|VD-HD| = 2); moving one endpoint diagonally
        // balances it.
        let layout = Layout2d::grid(3, 3);
        // phys 0=(0,0), 2=(0,2), 5=(1,2)
        // Gate (0,2): imbalance |0-2| = 2 -> Hfine = -2.
        assert_eq!(h_fine((8, 7), &[(0, 2)], Some(&layout)), -2);
        // Swap (2,5): gate becomes (0,5): |1-2| = 1 -> Hfine = -1 (better).
        assert_eq!(h_fine((2, 5), &[(0, 2)], Some(&layout)), -1);
    }

    #[test]
    fn no_layout_fine_is_zero() {
        assert_eq!(h_fine((0, 1), &[(0, 1)], None), 0);
    }

    #[test]
    fn priority_orders_lexicographically() {
        let a = SwapPriority { basic: 2, fine: -5 };
        let b = SwapPriority {
            basic: 1,
            fine: 100,
        };
        let c = SwapPriority { basic: 2, fine: -3 };
        assert!(a > b);
        assert!(c > a);
    }

    /// Deterministic pseudo-random pair sets exercising the scorers
    /// against the reference functions on a 4x4 grid.
    fn pseudo_random_pairs(seed: u64, n: usize, count: usize) -> Vec<(usize, usize)> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as usize
        };
        (0..count)
            .map(|_| {
                let a = next() % n;
                let b = (a + 1 + next() % (n - 1)) % n;
                (a, b)
            })
            .collect()
    }

    #[test]
    fn swap_scorer_equals_reference_priority() {
        let g = CouplingGraph::grid(4, 4);
        let d = DistanceMatrix::new(&g);
        let layout = Layout2d::grid(4, 4);
        let mut scorer = SwapScorer::new();
        for seed in 0..50u64 {
            let pairs = pseudo_random_pairs(seed, 16, (seed % 7) as usize + 1);
            for use_fine in [true, false] {
                let l = if use_fine { Some(&layout) } else { None };
                scorer.begin_round(&pairs, 16, l);
                for a in 0..16usize {
                    for &b in g.neighbors(a) {
                        if b < a {
                            continue;
                        }
                        let swap = (a, b);
                        assert_eq!(
                            scorer.priority(swap, &pairs, &d, l, use_fine),
                            priority(swap, &pairs, &d, l, use_fine),
                            "seed {seed}, swap {swap:?}, use_fine {use_fine}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn swap_scorer_reuse_across_rounds_is_clean() {
        // A big round followed by a small one: stale index entries from
        // the big round must not leak into the small round's scores.
        let g = CouplingGraph::grid(4, 4);
        let d = DistanceMatrix::new(&g);
        let layout = Layout2d::grid(4, 4);
        let mut scorer = SwapScorer::new();
        let big = pseudo_random_pairs(1, 16, 12);
        scorer.begin_round(&big, 16, Some(&layout));
        let small = [(0usize, 5usize)];
        scorer.begin_round(&small, 16, Some(&layout));
        for a in 0..16usize {
            for &b in g.neighbors(a) {
                if b < a {
                    continue;
                }
                assert_eq!(
                    scorer.priority((a, b), &small, &d, Some(&layout), true),
                    priority((a, b), &small, &d, Some(&layout), true),
                );
            }
        }
    }

    #[test]
    fn pair_dist_index_equals_reference_sum() {
        let g = CouplingGraph::grid(4, 4);
        let d = DistanceMatrix::new(&g);
        let mut index = PairDistIndex::new();
        for seed in 0..50u64 {
            let pairs = pseudo_random_pairs(seed ^ 0xdead, 16, (seed % 9) as usize + 1);
            index.begin_round(&pairs, &d, 16);
            for a in 0..16usize {
                for &b in g.neighbors(a) {
                    if b < a {
                        continue;
                    }
                    let swap = (a, b);
                    let reference: u64 = pairs
                        .iter()
                        .map(|&(pa, pb)| {
                            d.get(through_swap(pa, swap), through_swap(pb, swap)) as u64
                        })
                        .sum();
                    assert_eq!(
                        index.sum_through(swap, &pairs, &d),
                        reference,
                        "seed {seed}, swap {swap:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn cal_penalty_normalizes_and_blend_preserves_zero_alpha_order() {
        // alpha = 0 → zero penalty for every edge.
        assert_eq!(cal_penalty(0.0, 0.05, 0.05), 0);
        // The worst edge at alpha = 1 costs exactly one basic step.
        assert_eq!(cal_penalty(1.0, 0.05, 0.05), CAL_SCALE);
        assert_eq!(cal_penalty(0.5, 0.025, 0.05), CAL_SCALE / 4);
        // Edgeless snapshots (max error 0) never penalize.
        assert_eq!(cal_penalty(1.0, 0.0, 0.0), 0);
        // Zero-penalty blending is a strictly monotone map of `basic`:
        // every pairwise comparison, including the `> 0` gate, is
        // preserved.
        let priorities = [
            SwapPriority { basic: -1, fine: 3 },
            SwapPriority { basic: 0, fine: -2 },
            SwapPriority { basic: 1, fine: 0 },
            SwapPriority { basic: 2, fine: -5 },
        ];
        for a in priorities {
            for b in priorities {
                assert_eq!(
                    blend_cal(a, 0).cmp(&blend_cal(b, 0)),
                    a.cmp(&b),
                    "{a:?} vs {b:?}"
                );
            }
            assert_eq!(blend_cal(a, 0).basic > 0, a.basic > 0);
        }
        // With a penalty, equal-basic candidates re-order by edge
        // quality while a full distance step still dominates.
        let good = blend_cal(SwapPriority { basic: 1, fine: -9 }, 0);
        let bad = blend_cal(SwapPriority { basic: 1, fine: 9 }, CAL_SCALE / 2);
        assert!(good > bad, "low-error edge must win the tie");
        let closer = blend_cal(SwapPriority { basic: 2, fine: 0 }, CAL_SCALE / 2);
        assert!(closer > good, "a whole distance step still dominates");
    }

    #[test]
    fn priority_combines_both() {
        let g = CouplingGraph::grid(3, 3);
        let d = DistanceMatrix::new(&g);
        let layout = Layout2d::grid(3, 3);
        let p = priority((0, 1), &[(0, 8)], &d, Some(&layout), true);
        assert_eq!(p.basic, 1);
        // New pair (1,8): VD 2, HD 1 -> fine -1.
        assert_eq!(p.fine, -1);
        let p0 = priority((0, 1), &[(0, 8)], &d, Some(&layout), false);
        assert_eq!(p0.fine, 0);
    }
}
