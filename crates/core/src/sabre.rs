//! The SABRE baseline router (Li, Ding, Xie — "Tackling the Qubit
//! Mapping Problem for NISQ-Era Quantum Devices", ASPLOS 2019).
//!
//! SABRE is the best-known heuristic the paper compares against (Sec. V).
//! It is duration-unaware: it maintains a data-dependence *front layer*
//! `F`, executes every executable gate in `F`, and otherwise applies the
//! SWAP minimizing
//!
//! ```text
//! H = 1/|F| Σ_{g∈F} D[π(g.q1)][π(g.q2)]
//!   + W · 1/|E| Σ_{g∈E} D[π(g.q1)][π(g.q2)]
//! ```
//!
//! scaled by a per-qubit *decay* factor that discourages consecutive
//! SWAPs on the same qubits (improving parallelism). `E` is a bounded
//! *extended set* of lookahead successors. The *reverse traversal*
//! technique runs the router forward and backward to derive a good
//! initial mapping; the paper (and this reproduction) feeds the same
//! initial mapping to both SABRE and CODAR for a fair comparison.

use crate::codar::validate;
use crate::error::RouteError;
use crate::mapping::Mapping;
use crate::result::RoutedCircuit;
use crate::scratch::RouterScratch;
use codar_arch::Device;
use codar_circuit::dag::FrontTracker;
use codar_circuit::schedule::Schedule;
use codar_circuit::{Circuit, CircuitDag, GateKind};

/// Tuning knobs for [`SabreRouter`], defaulting to the published values.
#[derive(Debug, Clone)]
pub struct SabreConfig {
    /// Weight `W` of the extended set in the cost function.
    pub extended_set_weight: f64,
    /// Maximum size of the extended set `E`.
    pub extended_set_size: usize,
    /// Additive decay increment per SWAP on a qubit.
    pub decay_delta: f64,
    /// Number of SWAP selections after which decay factors reset.
    pub decay_reset_interval: usize,
    /// Seed for the reverse-traversal initial mapping.
    pub seed: u64,
}

impl Default for SabreConfig {
    fn default() -> Self {
        SabreConfig {
            extended_set_weight: 0.5,
            extended_set_size: 20,
            decay_delta: 0.001,
            decay_reset_interval: 5,
            seed: 0,
        }
    }
}

/// The SABRE router bound to a device.
///
/// # Examples
///
/// ```
/// use codar_arch::Device;
/// use codar_circuit::Circuit;
/// use codar_router::SabreRouter;
///
/// # fn main() -> Result<(), codar_router::RouteError> {
/// use codar_router::Mapping;
///
/// let mut c = Circuit::new(3);
/// c.cx(0, 2);
/// let device = Device::linear(3);
/// let routed = SabreRouter::new(&device)
///     .route_with_mapping(&c, Mapping::identity(3, 3))?;
/// assert!(routed.swaps_inserted >= 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SabreRouter<'d> {
    device: &'d Device,
    config: SabreConfig,
}

impl<'d> SabreRouter<'d> {
    /// Creates a router with the published default parameters.
    pub fn new(device: &'d Device) -> Self {
        SabreRouter {
            device,
            config: SabreConfig::default(),
        }
    }

    /// Creates a router with an explicit configuration.
    pub fn with_config(device: &'d Device, config: SabreConfig) -> Self {
        SabreRouter { device, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SabreConfig {
        &self.config
    }

    /// Routes `circuit` with a reverse-traversal initial mapping.
    ///
    /// # Errors
    ///
    /// As for [`crate::CodarRouter::route`].
    pub fn route(&self, circuit: &Circuit) -> Result<RoutedCircuit, RouteError> {
        self.route_scratch(circuit, &mut RouterScratch::new())
    }

    /// Routes `circuit` as [`SabreRouter::route`], reusing `scratch`.
    ///
    /// # Errors
    ///
    /// As for [`crate::CodarRouter::route`].
    pub fn route_scratch(
        &self,
        circuit: &Circuit,
        scratch: &mut RouterScratch,
    ) -> Result<RoutedCircuit, RouteError> {
        validate(circuit, self.device)?;
        let initial =
            reverse_traversal_mapping_scratch(circuit, self.device, self.config.seed, scratch);
        self.route_with_scratch(circuit, initial, scratch)
    }

    /// Routes `circuit` from an explicit initial mapping.
    ///
    /// # Errors
    ///
    /// As for [`crate::CodarRouter::route`].
    pub fn route_with_mapping(
        &self,
        circuit: &Circuit,
        initial: Mapping,
    ) -> Result<RoutedCircuit, RouteError> {
        self.route_with_scratch(circuit, initial, &mut RouterScratch::new())
    }

    /// Routes `circuit` from an explicit initial mapping, reusing the
    /// buffers in `scratch` (see
    /// [`crate::CodarRouter::route_with_scratch`]).
    ///
    /// # Errors
    ///
    /// As for [`crate::CodarRouter::route`].
    pub fn route_with_scratch(
        &self,
        circuit: &Circuit,
        initial: Mapping,
        scratch: &mut RouterScratch,
    ) -> Result<RoutedCircuit, RouteError> {
        validate(circuit, self.device)?;
        let (out, final_mapping, swaps) =
            route_core(circuit, self.device, initial.clone(), &self.config, scratch)?;
        let tau = self.device.durations();
        let schedule = Schedule::asap(&out, |g| tau.of(g));
        Ok(RoutedCircuit {
            weighted_depth: schedule.makespan,
            start_times: schedule.start,
            circuit: out,
            swaps_inserted: swaps.len(),
            inserted_swap_indices: swaps,
            initial_mapping: initial,
            final_mapping,
            router: "sabre",
        })
    }
}

/// One forward SABRE pass. Returns the physical circuit, the final
/// mapping and the output indices of the inserted SWAPs.
///
/// The pass reuses `scratch` for every per-tick collection (executable
/// set, extended-set BFS, candidate edges, endpoint pairs) and scores
/// candidates through the incremental
/// [`crate::heuristic::PairDistIndex`] sums — the distance totals are
/// held as exact integers, so every score is bit-identical to the
/// per-candidate re-summation it replaces and `min_by` picks the same
/// SWAP.
fn route_core(
    circuit: &Circuit,
    device: &Device,
    mut pi: Mapping,
    config: &SabreConfig,
    scratch: &mut RouterScratch,
) -> Result<(Circuit, Mapping, Vec<usize>), RouteError> {
    let graph = device.graph();
    let dist = device.distances();
    let num_qubits = device.num_qubits();
    let dag = CircuitDag::new(circuit);
    let mut tracker = FrontTracker::new(&dag);
    let mut out = Circuit::with_bits(num_qubits, circuit.num_bits());
    scratch.begin_device(num_qubits);
    scratch.begin_circuit(circuit.len());
    scratch.decay[..num_qubits].fill(1.0);
    let mut inserted_swaps: Vec<usize> = Vec::new();
    let mut swaps_since_reset = 0usize;
    // Safety valve: SABRE provably terminates with decay in practice,
    // but we bound the run to fail loudly instead of hanging.
    let budget = 1000 + circuit.len() * (dist.diameter().max(1) as usize) * 8;

    while !tracker.is_done() {
        // Execute every executable gate in the front layer.
        let mut executed = false;
        loop {
            scratch.executable.clear();
            for &g in tracker.front() {
                let gate = &circuit.gates()[g];
                let ok = match gate.kind {
                    GateKind::Barrier => true,
                    _ if gate.qubits.len() == 2 => {
                        graph.are_adjacent(pi.phys_of(gate.qubits[0]), pi.phys_of(gate.qubits[1]))
                    }
                    _ => true,
                };
                if ok {
                    scratch.executable.push(g);
                }
            }
            if scratch.executable.is_empty() {
                break;
            }
            for &g in &scratch.executable {
                let gate = &circuit.gates()[g];
                let mut mapped = gate.clone();
                for q in mapped.qubits.iter_mut() {
                    *q = pi.phys_of(*q);
                }
                out.push(mapped);
                tracker.resolve(g, &dag);
            }
            executed = true;
        }
        if tracker.is_done() {
            break;
        }
        if executed {
            // Gate progress resets the decay window (as in the paper's
            // reference implementation).
            scratch.decay[..num_qubits].fill(1.0);
            swaps_since_reset = 0;
        }

        // All front gates are blocked two-qubit gates now. Collect the
        // extended set: successors of the front, breadth-first, bounded.
        let front = tracker.front();
        let stamp = scratch.next_stamp();
        scratch.extended.clear();
        scratch.bfs_queue.clear();
        for &g in front {
            scratch.gate_stamp[g] = stamp;
            scratch.bfs_queue.push_back(g);
        }
        while let Some(g) = scratch.bfs_queue.pop_front() {
            if scratch.extended.len() >= config.extended_set_size {
                break;
            }
            for &s in dag.successors(g) {
                if scratch.gate_stamp[s] != stamp {
                    scratch.gate_stamp[s] = stamp;
                    if circuit.gates()[s].qubits.len() == 2 {
                        scratch.extended.push(s);
                    }
                    scratch.bfs_queue.push_back(s);
                }
            }
        }

        // Candidate SWAPs: edges touching any front gate's endpoints,
        // stamp-deduplicated in O(1) each.
        let stamp = scratch.next_stamp();
        scratch.candidates.clear();
        for &g in front {
            for &q in &circuit.gates()[g].qubits {
                let p = pi.phys_of(q);
                for &nb in graph.neighbors(p) {
                    let edge = (p.min(nb), p.max(nb));
                    let id = edge.0 * num_qubits + edge.1;
                    if scratch.edge_stamp[id] != stamp {
                        scratch.edge_stamp[id] = stamp;
                        scratch.candidates.push(edge);
                    }
                }
            }
        }
        debug_assert!(
            !scratch.candidates.is_empty(),
            "front gates always touch edges"
        );

        // Physical endpoint pairs of the front and extended gates,
        // indexed once; each candidate then pays only for the pairs it
        // actually moves.
        scratch.front_pairs.clear();
        for &g in front {
            let q = &circuit.gates()[g].qubits;
            if q.len() == 2 {
                scratch
                    .front_pairs
                    .push((pi.phys_of(q[0]), pi.phys_of(q[1])));
            }
        }
        scratch.extended_pairs.clear();
        for &g in &scratch.extended {
            let q = &circuit.gates()[g].qubits;
            scratch
                .extended_pairs
                .push((pi.phys_of(q[0]), pi.phys_of(q[1])));
        }
        scratch
            .front_index
            .begin_round(&scratch.front_pairs, dist, num_qubits);
        scratch
            .extended_index
            .begin_round(&scratch.extended_pairs, dist, num_qubits);

        let front_len = front.len().max(1) as f64;
        let extended_len = scratch.extended.len();
        let score = |edge: (usize, usize)| -> f64 {
            let f_sum = scratch
                .front_index
                .sum_through(edge, &scratch.front_pairs, dist);
            let f_term = f_sum as f64 / front_len;
            let e_term: f64 = if extended_len == 0 {
                0.0
            } else {
                let e_sum = scratch
                    .extended_index
                    .sum_through(edge, &scratch.extended_pairs, dist);
                config.extended_set_weight * e_sum as f64 / extended_len as f64
            };
            let decay_factor = scratch.decay[edge.0].max(scratch.decay[edge.1]);
            decay_factor * (f_term + e_term)
        };

        let best = scratch
            .candidates
            .iter()
            .copied()
            .min_by(|&a, &b| {
                score(a)
                    .partial_cmp(&score(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.cmp(&b))
            })
            .expect("candidates is non-empty");

        inserted_swaps.push(out.len());
        out.add(GateKind::Swap, vec![best.0, best.1], vec![]);
        pi.apply_swap(best.0, best.1);
        scratch.decay[best.0] += config.decay_delta;
        scratch.decay[best.1] += config.decay_delta;
        swaps_since_reset += 1;
        if swaps_since_reset >= config.decay_reset_interval {
            scratch.decay[..num_qubits].fill(1.0);
            swaps_since_reset = 0;
        }
        if inserted_swaps.len() > budget {
            // A disconnected pair is the only way to make no progress.
            let g = tracker.front()[0];
            let q = &circuit.gates()[g].qubits;
            return Err(RouteError::Disconnected {
                a: pi.phys_of(q[0]),
                b: pi.phys_of(q[1]),
            });
        }
    }
    Ok((out, pi, inserted_swaps))
}

/// SABRE's reverse-traversal initial mapping (shared by both routers in
/// the experiments, as in the paper).
///
/// Routes the circuit forward from a seeded random placement, routes the
/// reversed circuit from the resulting final mapping, and returns that
/// pass's final mapping: it reflects where the *early* gates of the
/// forward circuit want their qubits.
///
/// Falls back to the identity mapping for circuits with no two-qubit
/// gates or devices where routing fails (disconnected graphs).
pub fn reverse_traversal_mapping(circuit: &Circuit, device: &Device, seed: u64) -> Mapping {
    reverse_traversal_mapping_scratch(circuit, device, seed, &mut RouterScratch::new())
}

/// As [`reverse_traversal_mapping`], reusing `scratch` across the two
/// underlying SABRE passes (the engine threads one scratch per worker).
pub fn reverse_traversal_mapping_scratch(
    circuit: &Circuit,
    device: &Device,
    seed: u64,
    scratch: &mut RouterScratch,
) -> Mapping {
    let config = SabreConfig {
        seed,
        ..SabreConfig::default()
    };
    let start = crate::mapping::InitialMapping::Random { seed }.build(circuit, device);
    let Ok((_, after_forward, _)) = route_core(circuit, device, start, &config, scratch) else {
        return Mapping::identity(circuit.num_qubits(), device.num_qubits());
    };
    let reversed = circuit.reversed();
    match route_core(&reversed, device, after_forward, &config, scratch) {
        Ok((_, after_backward, _)) => after_backward,
        Err(_) => Mapping::identity(circuit.num_qubits(), device.num_qubits()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_coupling, check_equivalence};
    use codar_arch::Device;

    fn route_identity(device: &Device, circuit: &Circuit) -> RoutedCircuit {
        SabreRouter::new(device)
            .route_with_mapping(
                circuit,
                Mapping::identity(circuit.num_qubits(), device.num_qubits()),
            )
            .unwrap()
    }

    #[test]
    fn adjacent_gates_pass_through() {
        let device = Device::linear(3);
        let mut c = Circuit::new(3);
        c.h(0);
        c.cx(0, 1);
        c.cx(1, 2);
        let r = route_identity(&device, &c);
        assert_eq!(r.swaps_inserted, 0);
        check_coupling(&r.circuit, &device).unwrap();
    }

    #[test]
    fn distant_gate_gets_routed() {
        let device = Device::linear(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let r = route_identity(&device, &c);
        assert!(r.swaps_inserted >= 3);
        check_coupling(&r.circuit, &device).unwrap();
        check_equivalence(&c, &r).unwrap();
    }

    #[test]
    fn preserves_gate_order_semantics() {
        let device = Device::grid(2, 3);
        let mut c = Circuit::new(5);
        c.h(0);
        c.cx(0, 4);
        c.cx(4, 2);
        c.t(2);
        c.cx(2, 0);
        c.measure(0, 0);
        let r = route_identity(&device, &c);
        check_coupling(&r.circuit, &device).unwrap();
        check_equivalence(&c, &r).unwrap();
    }

    #[test]
    fn reverse_traversal_is_deterministic() {
        let device = Device::ibm_q20_tokyo();
        let mut c = Circuit::new(6);
        for i in 0..5 {
            c.cx(i, i + 1);
        }
        c.cx(0, 5);
        let a = reverse_traversal_mapping(&c, &device, 42);
        let b = reverse_traversal_mapping(&c, &device, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn reverse_traversal_differs_by_seed() {
        let device = Device::ibm_q20_tokyo();
        let mut c = Circuit::new(6);
        for i in 0..5 {
            c.cx(i, i + 1);
        }
        let a = reverse_traversal_mapping(&c, &device, 1);
        let b = reverse_traversal_mapping(&c, &device, 2);
        // Different seeds usually give different placements; at minimum
        // both are valid injective mappings.
        let check = |m: &Mapping| {
            let mut seen = std::collections::BTreeSet::new();
            for l in 0..6 {
                assert!(seen.insert(m.phys_of(l)));
            }
        };
        check(&a);
        check(&b);
    }

    #[test]
    fn qft_on_tokyo_is_compliant() {
        let device = Device::ibm_q20_tokyo();
        let mut c = Circuit::new(8);
        for i in 0..8usize {
            c.h(i);
            for j in i + 1..8 {
                c.cu1(0.5, j, i);
            }
        }
        let r = SabreRouter::new(&device).route(&c).unwrap();
        check_coupling(&r.circuit, &device).unwrap();
        check_equivalence(&c, &r).unwrap();
    }

    #[test]
    fn barrier_handled() {
        let device = Device::linear(3);
        let mut c = Circuit::new(3);
        c.h(0);
        c.barrier(vec![0, 1, 2]);
        c.cx(0, 2);
        let r = route_identity(&device, &c);
        check_coupling(&r.circuit, &device).unwrap();
        assert_eq!(r.circuit.count_kind(GateKind::Barrier), 1);
    }

    #[test]
    fn disconnected_is_error() {
        let graph = codar_arch::CouplingGraph::new(4, &[(0, 1), (2, 3)]);
        let device = Device::from_graph("split", graph);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let err = SabreRouter::new(&device)
            .route_with_mapping(&c, Mapping::identity(4, 4))
            .unwrap_err();
        assert!(matches!(err, RouteError::Disconnected { .. }));
    }

    #[test]
    fn weighted_depth_consistent_with_schedule() {
        let device = Device::linear(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        c.t(1);
        let r = route_identity(&device, &c);
        let tau = device.durations().clone();
        assert_eq!(
            r.weighted_depth,
            codar_circuit::weighted_depth(&r.circuit, |g| tau.of(g))
        );
    }
}
