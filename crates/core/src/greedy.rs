//! A naive greedy baseline router, for calibration.
//!
//! Processes gates strictly in program order; whenever a two-qubit gate
//! lands on uncoupled physical qubits, it immediately walks one operand
//! toward the other along a shortest path, inserting SWAPs — no
//! lookahead, no context, no duration model. This is the "obvious"
//! router the heuristic literature improves on; having it in-tree
//! calibrates how much of CODAR's/SABRE's win comes from lookahead at
//! all (see the `sweep` ablations for CODAR's own mechanisms).

use crate::codar::validate;
use crate::error::RouteError;
use crate::mapping::{InitialMapping, Mapping};
use crate::result::RoutedCircuit;
use crate::scratch::RouterScratch;
use codar_arch::Device;
use codar_circuit::schedule::Schedule;
use codar_circuit::{Circuit, GateKind};

/// The greedy shortest-path router.
///
/// # Examples
///
/// ```
/// use codar_arch::Device;
/// use codar_circuit::Circuit;
/// use codar_router::{greedy::GreedyRouter, Mapping};
///
/// # fn main() -> Result<(), codar_router::RouteError> {
/// let mut c = Circuit::new(4);
/// c.cx(0, 3);
/// let device = Device::linear(4);
/// let routed = GreedyRouter::new(&device)
///     .route_with_mapping(&c, Mapping::identity(4, 4))?;
/// assert_eq!(routed.swaps_inserted, 2); // walks q0 next to q3
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GreedyRouter<'d> {
    device: &'d Device,
    initial_mapping: InitialMapping,
}

impl<'d> GreedyRouter<'d> {
    /// Creates a greedy router (identity initial mapping by default —
    /// the naive baseline has no mapping search either).
    pub fn new(device: &'d Device) -> Self {
        GreedyRouter {
            device,
            initial_mapping: InitialMapping::Identity,
        }
    }

    /// Overrides the initial mapping strategy.
    pub fn with_initial_mapping(mut self, initial_mapping: InitialMapping) -> Self {
        self.initial_mapping = initial_mapping;
        self
    }

    /// Routes `circuit`.
    ///
    /// # Errors
    ///
    /// As for [`crate::CodarRouter::route`].
    pub fn route(&self, circuit: &Circuit) -> Result<RoutedCircuit, RouteError> {
        self.route_scratch(circuit, &mut RouterScratch::new())
    }

    /// Routes `circuit` as [`GreedyRouter::route`], reusing `scratch`.
    ///
    /// # Errors
    ///
    /// As for [`crate::CodarRouter::route`].
    pub fn route_scratch(
        &self,
        circuit: &Circuit,
        scratch: &mut RouterScratch,
    ) -> Result<RoutedCircuit, RouteError> {
        validate(circuit, self.device)?;
        let initial = self
            .initial_mapping
            .build_scratch(circuit, self.device, scratch);
        self.route_with_scratch(circuit, initial, scratch)
    }

    /// Routes `circuit` from an explicit initial mapping.
    ///
    /// # Errors
    ///
    /// As for [`crate::CodarRouter::route`].
    pub fn route_with_mapping(
        &self,
        circuit: &Circuit,
        initial: Mapping,
    ) -> Result<RoutedCircuit, RouteError> {
        self.route_with_scratch(circuit, initial, &mut RouterScratch::new())
    }

    /// Routes `circuit` from an explicit initial mapping, reusing the
    /// buffers in `scratch` (see
    /// [`crate::CodarRouter::route_with_scratch`]).
    ///
    /// # Errors
    ///
    /// As for [`crate::CodarRouter::route`].
    pub fn route_with_scratch(
        &self,
        circuit: &Circuit,
        initial: Mapping,
        _scratch: &mut RouterScratch,
    ) -> Result<RoutedCircuit, RouteError> {
        validate(circuit, self.device)?;
        let graph = self.device.graph();
        let dist = self.device.distances();
        let mut pi = initial.clone();
        let mut out = Circuit::with_bits(self.device.num_qubits(), circuit.num_bits());
        let mut inserted_swaps: Vec<usize> = Vec::new();
        for gate in circuit.gates() {
            if gate.qubits.len() == 2 && gate.kind != GateKind::Barrier {
                let (a, b) = (pi.phys_of(gate.qubits[0]), pi.phys_of(gate.qubits[1]));
                if !dist.connected(a, b) {
                    return Err(RouteError::Disconnected { a, b });
                }
                // Walk `a` to a neighbor of `b` along one shortest path.
                let path = dist
                    .shortest_path(graph, a, b)
                    .expect("connectivity checked above");
                for window in path.windows(2).take(path.len().saturating_sub(2)) {
                    let (x, y) = (window[0], window[1]);
                    inserted_swaps.push(out.len());
                    out.add(GateKind::Swap, vec![x, y], vec![]);
                    pi.apply_swap(x, y);
                }
            }
            let mut mapped = gate.clone();
            for q in mapped.qubits.iter_mut() {
                *q = pi.phys_of(*q);
            }
            out.push(mapped);
        }
        let tau = self.device.durations();
        let schedule = Schedule::asap(&out, |g| tau.of(g));
        Ok(RoutedCircuit {
            weighted_depth: schedule.makespan,
            start_times: schedule.start,
            circuit: out,
            swaps_inserted: inserted_swaps.len(),
            inserted_swap_indices: inserted_swaps,
            initial_mapping: initial,
            final_mapping: pi,
            router: "greedy",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{check_coupling, check_equivalence};
    use crate::CodarRouter;

    #[test]
    fn adjacent_gates_untouched() {
        let device = Device::linear(3);
        let mut c = Circuit::new(3);
        c.cx(0, 1);
        c.cx(1, 2);
        let r = GreedyRouter::new(&device).route(&c).expect("fits");
        assert_eq!(r.swaps_inserted, 0);
        check_coupling(&r.circuit, &device).expect("coupling");
    }

    #[test]
    fn walks_shortest_path() {
        let device = Device::linear(5);
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let r = GreedyRouter::new(&device).route(&c).expect("fits");
        assert_eq!(r.swaps_inserted, 3);
        check_coupling(&r.circuit, &device).expect("coupling");
        check_equivalence(&c, &r).expect("equivalent");
    }

    #[test]
    fn preserves_semantics_on_interleaved_program() {
        let device = Device::grid(2, 3);
        let mut c = Circuit::new(5);
        c.h(0);
        c.cx(0, 4);
        c.t(4);
        c.cx(4, 1);
        c.cx(1, 3);
        c.measure(3, 0);
        let r = GreedyRouter::new(&device).route(&c).expect("fits");
        check_coupling(&r.circuit, &device).expect("coupling");
        check_equivalence(&c, &r).expect("equivalent");
    }

    #[test]
    fn codar_beats_greedy_on_structured_circuits() {
        let device = Device::ibm_q20_tokyo();
        let mut qft = Circuit::new(10);
        for i in 0..10usize {
            qft.h(i);
            for j in i + 1..10 {
                qft.cu1(0.5, j, i);
            }
        }
        let initial = Mapping::identity(10, device.num_qubits());
        let greedy = GreedyRouter::new(&device)
            .route_with_mapping(&qft, initial.clone())
            .expect("fits");
        let codar = CodarRouter::new(&device)
            .route_with_mapping(&qft, initial)
            .expect("fits");
        assert!(
            codar.weighted_depth < greedy.weighted_depth,
            "codar {} vs greedy {}",
            codar.weighted_depth,
            greedy.weighted_depth
        );
    }

    #[test]
    fn disconnected_is_error() {
        let graph = codar_arch::CouplingGraph::new(4, &[(0, 1), (2, 3)]);
        let device = Device::from_graph("split", graph);
        let mut c = Circuit::new(4);
        c.cx(0, 2);
        assert!(matches!(
            GreedyRouter::new(&device).route(&c),
            Err(RouteError::Disconnected { .. })
        ));
    }

    #[test]
    fn barrier_and_1q_pass_through() {
        let device = Device::linear(3);
        let mut c = Circuit::new(3);
        c.barrier(vec![0, 1, 2]);
        c.h(1);
        let r = GreedyRouter::new(&device).route(&c).expect("fits");
        assert_eq!(r.gate_count(), 2);
        assert_eq!(r.swaps_inserted, 0);
    }
}
