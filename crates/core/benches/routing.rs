//! Router hot-path benchmarks at the `codar-router` level: scratch
//! reuse vs fresh allocation, the cached CF front, and the incremental
//! SWAP scorer. Run with `cargo bench -p codar-router`.

use codar_arch::Device;
use codar_benchmarks::generators;
use codar_router::front::{CommutativeFront, DEFAULT_WINDOW};
use codar_router::heuristic::{priority, SwapScorer};
use codar_router::{CodarRouter, Mapping, RouterScratch, SabreRouter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// CODAR and SABRE steady-state routing: one scratch reused across
/// iterations (the engine-worker hot path) vs a fresh scratch per call.
fn bench_scratch_reuse(c: &mut Criterion) {
    let device = Device::ibm_q20_tokyo();
    let mut group = c.benchmark_group("scratch_reuse");
    for &n in &[8usize, 16] {
        let circuit = generators::qft(n);
        let initial = Mapping::identity(n, device.num_qubits());
        let codar = CodarRouter::new(&device);
        let mut scratch = RouterScratch::new();
        group.bench_with_input(
            BenchmarkId::new("codar_reused", n),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    black_box(
                        codar
                            .route_with_scratch(circuit, initial.clone(), &mut scratch)
                            .expect("qft fits"),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("codar_fresh", n),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    black_box(
                        codar
                            .route_with_mapping(circuit, initial.clone())
                            .expect("qft fits"),
                    )
                });
            },
        );
        let sabre = SabreRouter::new(&device);
        group.bench_with_input(
            BenchmarkId::new("sabre_reused", n),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    black_box(
                        sabre
                            .route_with_scratch(circuit, initial.clone(), &mut scratch)
                            .expect("qft fits"),
                    )
                });
            },
        );
    }
    group.finish();
}

/// The cached CF front: steady-state queries (cache hits between
/// emissions) vs a full rebuild per query.
fn bench_cf_cache(c: &mut Criterion) {
    let circuit = generators::random_clifford_t(20, 1000, 3);
    c.bench_function("cf_cached_query", |b| {
        let mut front = CommutativeFront::new(&circuit, true, DEFAULT_WINDOW);
        front.cf_gates(&circuit); // warm the cache
        b.iter(|| black_box(front.cf_gates(&circuit).len()));
    });
    c.bench_function("cf_rebuild", |b| {
        b.iter(|| {
            let mut front = CommutativeFront::new(&circuit, true, DEFAULT_WINDOW);
            black_box(front.cf_gates(&circuit).len())
        });
    });
}

/// Incremental SWAP scoring vs the reference full re-summation, on a
/// Sycamore-sized pair set.
fn bench_swap_scoring(c: &mut Criterion) {
    let device = Device::google_sycamore54();
    let dist = device.distances();
    let layout = device.layout();
    let graph = device.graph();
    let pairs: Vec<(usize, usize)> = (0..16).map(|i| (i, 53 - i)).collect();
    let edges: Vec<(usize, usize)> = (0..device.num_qubits())
        .flat_map(|a| {
            graph
                .neighbors(a)
                .iter()
                .map(move |&b| (a.min(b), a.max(b)))
        })
        .collect();
    c.bench_function("score_incremental_54q", |b| {
        let mut scorer = SwapScorer::new();
        b.iter(|| {
            scorer.begin_round(&pairs, device.num_qubits(), layout);
            let mut acc = 0i64;
            for &edge in &edges {
                acc += scorer.priority(edge, &pairs, dist, layout, true).basic;
            }
            black_box(acc)
        });
    });
    c.bench_function("score_reference_54q", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for &edge in &edges {
                acc += priority(edge, &pairs, dist, layout, true).basic;
            }
            black_box(acc)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scratch_reuse, bench_cf_cache, bench_swap_scoring
}
criterion_main!(benches);
