//! Scratch-reuse equivalence properties: the optimized, scratch-backed
//! router hot paths must produce **gate-for-gate identical**
//! [`RoutedCircuit`]s whether the scratch is fresh per call (the
//! `route_with_mapping` behavior, equal to the seed implementation —
//! pinned by the golden summaries) or reused across many circuits and
//! devices (the engine-worker behavior). Identity covers the routed
//! gate sequence, the inserted SWAPs, the start times and the weighted
//! depth.

use codar_arch::Device;
use codar_benchmarks::generators;
use codar_router::{
    CodarConfig, CodarRouter, GreedyRouter, Mapping, RoutedCircuit, RouterScratch, SabreRouter,
};
use proptest::prelude::*;

/// The full 8-device catalog.
fn catalog() -> Vec<Device> {
    Device::presets().into_iter().map(|(_, d)| d).collect()
}

/// A deterministic random circuit drawn from the generator the
/// benchmark suite uses, sized to fit every catalog device.
fn random_circuit(seed: u64) -> codar_circuit::Circuit {
    let n = 3 + (seed % 3) as usize; // 3..=5 qubits fits the 5-qubit device
    let gates = 10 + (seed % 40) as usize;
    generators::random_clifford_t(n, gates, seed)
}

fn assert_identical(fresh: &RoutedCircuit, reused: &RoutedCircuit, context: &str) {
    assert_eq!(
        fresh.circuit.gates(),
        reused.circuit.gates(),
        "gate sequences diverge: {context}"
    );
    assert_eq!(
        fresh.swaps_inserted, reused.swaps_inserted,
        "swap counts diverge: {context}"
    );
    assert_eq!(
        fresh.inserted_swap_indices, reused.inserted_swap_indices,
        "swap positions diverge: {context}"
    );
    assert_eq!(
        fresh.start_times, reused.start_times,
        "start times diverge: {context}"
    );
    assert_eq!(
        fresh.weighted_depth, reused.weighted_depth,
        "weighted depths diverge: {context}"
    );
    assert_eq!(
        fresh.final_mapping, reused.final_mapping,
        "final mappings diverge: {context}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// CODAR: fresh scratch per call == one scratch shared across the
    /// whole circuit×device matrix.
    #[test]
    fn codar_scratch_reuse_is_invisible(seed in 0u64..1000) {
        let circuit = random_circuit(seed);
        let mut shared = RouterScratch::new();
        for device in catalog() {
            let initial = Mapping::identity(circuit.num_qubits(), device.num_qubits());
            let router = CodarRouter::new(&device);
            let fresh = router
                .route_with_mapping(&circuit, initial.clone())
                .expect("fits");
            let reused = router
                .route_with_scratch(&circuit, initial, &mut shared)
                .expect("fits");
            assert_identical(&fresh, &reused, &format!("codar seed {seed} on {}", device.name()));
        }
    }

    /// SABRE: same property, including the reverse-traversal initial
    /// mapping (two extra routing passes through the same scratch).
    #[test]
    fn sabre_scratch_reuse_is_invisible(seed in 0u64..1000) {
        let circuit = random_circuit(seed);
        let mut shared = RouterScratch::new();
        for device in catalog() {
            let router = SabreRouter::new(&device);
            let fresh = router.route(&circuit).expect("fits");
            let reused = router
                .route_scratch(&circuit, &mut shared)
                .expect("fits");
            assert_identical(&fresh, &reused, &format!("sabre seed {seed} on {}", device.name()));
        }
    }

    /// Greedy: same property (trivially, but it pins the API contract).
    #[test]
    fn greedy_scratch_reuse_is_invisible(seed in 0u64..1000) {
        let circuit = random_circuit(seed);
        let mut shared = RouterScratch::new();
        for device in catalog() {
            let initial = Mapping::identity(circuit.num_qubits(), device.num_qubits());
            let router = GreedyRouter::new(&device);
            let fresh = router
                .route_with_mapping(&circuit, initial.clone())
                .expect("fits");
            let reused = router
                .route_with_scratch(&circuit, initial, &mut shared)
                .expect("fits");
            assert_identical(&fresh, &reused, &format!("greedy seed {seed} on {}", device.name()));
        }
    }

    /// Ablation configurations go through the same scratch-backed loop;
    /// reuse must stay invisible with mechanisms disabled too.
    #[test]
    fn codar_ablations_scratch_reuse_is_invisible(seed in 0u64..1000) {
        let circuit = random_circuit(seed);
        let device = Device::ibm_q20_tokyo();
        let mut shared = RouterScratch::new();
        for (duration, commutativity, hfine) in
            [(false, true, true), (true, false, true), (true, true, false)]
        {
            let config = CodarConfig {
                enable_duration_awareness: duration,
                enable_commutativity: commutativity,
                enable_hfine: hfine,
                ..CodarConfig::default()
            };
            let initial = Mapping::identity(circuit.num_qubits(), device.num_qubits());
            let router = CodarRouter::with_config(&device, config);
            let fresh = router
                .route_with_mapping(&circuit, initial.clone())
                .expect("fits");
            let reused = router
                .route_with_scratch(&circuit, initial, &mut shared)
                .expect("fits");
            assert_identical(
                &fresh,
                &reused,
                &format!("ablation ({duration},{commutativity},{hfine}) seed {seed}"),
            );
        }
    }
}
