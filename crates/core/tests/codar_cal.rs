//! Property tests for the calibration-aware `codar-cal` variant.
//!
//! Across random circuits × the full 8-device catalog × random
//! synthetic/drifted snapshots × alpha ∈ {0, 0.25, 0.5, 1.0}:
//!
//! * every route satisfies the coupling constraints and is
//!   semantically equivalent to its input (verification),
//! * fresh and reused scratches produce gate-for-gate identical
//!   results (the engine-worker reuse contract),
//! * `alpha = 0` is gate-for-gate identical to plain CODAR — the
//!   differential reduction, here on random inputs (the committed
//!   suite is covered by `crates/engine/tests/cal_differential.rs`).

use codar_arch::{CalibrationSnapshot, Device};
use codar_benchmarks::generators;
use codar_router::verify::{check_coupling, check_equivalence};
use codar_router::{CodarConfig, CodarRouter, Mapping, RoutedCircuit, RouterScratch};
use proptest::prelude::*;

const ALPHAS: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// The full 8-device catalog.
fn catalog() -> Vec<Device> {
    Device::presets().into_iter().map(|(_, d)| d).collect()
}

/// A deterministic random circuit sized to fit every catalog device.
fn random_circuit(seed: u64) -> codar_circuit::Circuit {
    let n = 3 + (seed % 3) as usize; // 3..=5 qubits fits the 5-qubit device
    let gates = 10 + (seed % 40) as usize;
    generators::random_clifford_t(n, gates, seed)
}

/// A random snapshot: seeded synthetic calibration, drifted 0..3 times.
fn random_snapshot(device: &Device, seed: u64) -> CalibrationSnapshot {
    let mut snapshot = CalibrationSnapshot::synthetic(device, seed);
    for _ in 0..(seed % 3) {
        snapshot = snapshot.drifted(seed ^ 0x5ca1ab1e);
    }
    snapshot
}

fn assert_identical(a: &RoutedCircuit, b: &RoutedCircuit, context: &str) {
    assert_eq!(
        a.circuit.gates(),
        b.circuit.gates(),
        "gates diverge: {context}"
    );
    assert_eq!(
        a.start_times, b.start_times,
        "start times diverge: {context}"
    );
    assert_eq!(
        a.weighted_depth, b.weighted_depth,
        "depths diverge: {context}"
    );
    assert_eq!(
        a.final_mapping, b.final_mapping,
        "mappings diverge: {context}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// codar-cal routes verify (coupling + equivalence) for every
    /// device and alpha, and scratch reuse stays invisible.
    #[test]
    fn codar_cal_verifies_across_catalog_and_alphas(seed in 0u64..1000) {
        let circuit = random_circuit(seed);
        let mut shared = RouterScratch::new();
        for device in catalog() {
            let snapshot = random_snapshot(&device, seed);
            for alpha in ALPHAS {
                let config = CodarConfig {
                    cal_alpha: alpha,
                    ..CodarConfig::default()
                };
                let initial = Mapping::identity(circuit.num_qubits(), device.num_qubits());
                let router = CodarRouter::with_config(&device, config).with_snapshot(&snapshot);
                let context = format!(
                    "seed {seed}, alpha {alpha}, snapshot v{} on {}",
                    snapshot.version,
                    device.name()
                );
                let fresh = router
                    .route_with_mapping(&circuit, initial.clone())
                    .expect("fits");
                check_coupling(&fresh.circuit, &device).expect(&context);
                check_equivalence(&circuit, &fresh).expect(&context);
                let reused = router
                    .route_with_scratch(&circuit, initial, &mut shared)
                    .expect("fits");
                assert_identical(&fresh, &reused, &context);
            }
        }
    }

    /// alpha = 0 with any snapshot reduces gate-for-gate to plain
    /// CODAR on every catalog device.
    #[test]
    fn alpha_zero_reduces_to_plain_codar(seed in 0u64..1000) {
        let circuit = random_circuit(seed);
        let mut shared = RouterScratch::new();
        for device in catalog() {
            let snapshot = random_snapshot(&device, seed.wrapping_mul(31));
            let initial = Mapping::identity(circuit.num_qubits(), device.num_qubits());
            let plain = CodarRouter::new(&device)
                .route_with_scratch(&circuit, initial.clone(), &mut shared)
                .expect("fits");
            let zero = CodarRouter::new(&device)
                .with_snapshot(&snapshot)
                .route_with_scratch(&circuit, initial, &mut shared)
                .expect("fits");
            assert_identical(
                &plain,
                &zero,
                &format!("seed {seed} on {}", device.name()),
            );
        }
    }

    /// Snapshot reuse across *different* devices through one scratch:
    /// stale penalty tables from a big device must never leak into a
    /// smaller device's routing.
    #[test]
    fn penalty_tables_do_not_leak_across_devices(seed in 0u64..500) {
        let circuit = random_circuit(seed);
        let mut shared = RouterScratch::new();
        // Big device first (fills a large penalty table)...
        let big = Device::google_bristlecone72();
        let big_snapshot = random_snapshot(&big, seed);
        let config = CodarConfig { cal_alpha: 1.0, ..CodarConfig::default() };
        CodarRouter::with_config(&big, config.clone())
            .with_snapshot(&big_snapshot)
            .route_with_scratch(
                &circuit,
                Mapping::identity(circuit.num_qubits(), big.num_qubits()),
                &mut shared,
            )
            .expect("fits");
        // ...then a small one: identical to a fresh-scratch route.
        let small = Device::ibm_q5_yorktown();
        let small_snapshot = random_snapshot(&small, seed ^ 7);
        let initial = Mapping::identity(circuit.num_qubits(), small.num_qubits());
        let reused = CodarRouter::with_config(&small, config.clone())
            .with_snapshot(&small_snapshot)
            .route_with_scratch(&circuit, initial.clone(), &mut shared)
            .expect("fits");
        let fresh = CodarRouter::with_config(&small, config)
            .with_snapshot(&small_snapshot)
            .route_with_mapping(&circuit, initial)
            .expect("fits");
        assert_identical(&fresh, &reused, &format!("seed {seed} big→small"));
    }
}
