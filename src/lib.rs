//! Umbrella crate for the CODAR reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and
//! integration tests can `use codar_repro::...`. See the individual
//! crates for full documentation:
//!
//! * [`qasm`] — OpenQASM 2.0 frontend,
//! * [`circuit`] — circuit IR, DAG, commutativity, scheduling,
//! * [`arch`] — maQAM devices, coupling graphs, durations,
//! * [`router`] — the CODAR remapper and the SABRE baseline,
//! * [`sim`] — noisy state-vector simulation,
//! * [`benchmarks`] — benchmark generators and the 71-circuit suite,
//! * [`engine`] — the parallel suite-routing engine every paper
//!   experiment runs on (see `ARCHITECTURE.md`),
//! * [`service`] — the online routing daemon (`coded`) and its
//!   deterministic load generator (`loadgen`).
//!
//! # Examples
//!
//! ```
//! use codar_repro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = codar_repro::benchmarks::qft(4);
//! let device = Device::ibm_q20_tokyo();
//! let routed = CodarRouter::new(&device).route(&circuit)?;
//! assert!(routed.weighted_depth > 0);
//! # Ok(())
//! # }
//! ```

pub use codar_arch as arch;
pub use codar_benchmarks as benchmarks;
pub use codar_circuit as circuit;
pub use codar_engine as engine;
pub use codar_qasm as qasm;
pub use codar_router as router;
pub use codar_service as service;
pub use codar_sim as sim;

/// Convenience prelude importing the most common types.
pub mod prelude {
    pub use codar_arch::{Device, GateDurations};
    pub use codar_circuit::{Circuit, Gate, GateKind};
    pub use codar_router::{CodarRouter, RoutedCircuit, SabreRouter};
    pub use codar_sim::{NoiseModel, StateVector};
}
