//! `codar` — command-line qubit mapper.
//!
//! ```text
//! codar devices
//! codar stats   <file.qasm>
//! codar route   <file.qasm> [--device q20] [--router codar|sabre|greedy]
//!                          [--optimize] [--emit] [--seed N]
//! codar compare <file.qasm> [--device q20] [--seed N]
//! ```
//!
//! Reads OpenQASM 2.0 (with the embedded `qelib1.inc`), decomposes
//! 3-qubit gates, routes onto the chosen device model, verifies the
//! result, and reports weighted depth / SWAP counts; `--emit` prints
//! the routed circuit as OpenQASM.

use codar_repro::arch::Device;
use codar_repro::circuit::decompose::decompose_three_qubit_gates;
use codar_repro::circuit::from_qasm::{circuit_from_source, circuit_to_qasm};
use codar_repro::circuit::optimize::optimize;
use codar_repro::circuit::stats::CircuitStats;
use codar_repro::circuit::Circuit;
use codar_repro::router::sabre::reverse_traversal_mapping;
use codar_repro::router::verify::{check_coupling, check_equivalence};
use codar_repro::router::{CodarRouter, GreedyRouter, RoutedCircuit, SabreRouter};
use std::process::ExitCode;

struct Options {
    device: Device,
    router: String,
    optimize: bool,
    emit: bool,
    seed: u64,
}

fn parse_flags(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        device: Device::ibm_q20_tokyo(),
        router: "codar".to_string(),
        optimize: false,
        emit: false,
        seed: 0,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--device" => {
                let name = args.get(i + 1).ok_or("--device needs a value")?;
                options.device = Device::by_name(name)
                    .ok_or_else(|| format!("unknown device `{name}` (see `codar devices`)"))?;
                i += 2;
            }
            "--router" => {
                let name = args.get(i + 1).ok_or("--router needs a value")?;
                if !["codar", "sabre", "greedy"].contains(&name.as_str()) {
                    return Err(format!("unknown router `{name}`"));
                }
                options.router = name.clone();
                i += 2;
            }
            "--seed" => {
                options.seed = args
                    .get(i + 1)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
                i += 2;
            }
            "--optimize" => {
                options.optimize = true;
                i += 1;
            }
            "--emit" => {
                options.emit = true;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(options)
}

fn load_circuit(path: &str, do_optimize: bool) -> Result<Circuit, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let circuit = circuit_from_source(&source).map_err(|e| format!("{path}: {e}"))?;
    let circuit = decompose_three_qubit_gates(&circuit);
    Ok(if do_optimize {
        optimize(&circuit)
    } else {
        circuit
    })
}

fn route_one(circuit: &Circuit, options: &Options) -> Result<RoutedCircuit, String> {
    let initial = reverse_traversal_mapping(circuit, &options.device, options.seed);
    let routed = match options.router.as_str() {
        "codar" => CodarRouter::new(&options.device).route_with_mapping(circuit, initial),
        "sabre" => SabreRouter::new(&options.device).route_with_mapping(circuit, initial),
        _ => GreedyRouter::new(&options.device).route_with_mapping(circuit, initial),
    }
    .map_err(|e| e.to_string())?;
    check_coupling(&routed.circuit, &options.device).map_err(|e| e.to_string())?;
    check_equivalence(circuit, &routed).map_err(|e| e.to_string())?;
    Ok(routed)
}

fn cmd_devices() {
    println!(
        "{:<12}{:<26}{:>8}{:>8}{:>10}",
        "alias", "device", "qubits", "edges", "diameter"
    );
    for (alias, device) in Device::presets() {
        println!(
            "{:<12}{:<26}{:>8}{:>8}{:>10}",
            alias,
            device.name(),
            device.num_qubits(),
            device.graph().edges().len(),
            device.distances().diameter()
        );
    }
}

fn cmd_stats(path: &str) -> Result<(), String> {
    let raw = load_circuit(path, false)?;
    println!("{path}:");
    print!("{}", CircuitStats::of(&raw));
    let optimized = optimize(&raw);
    if optimized.len() < raw.len() {
        println!(
            "(--optimize would remove {} gates)",
            raw.len() - optimized.len()
        );
    }
    Ok(())
}

fn cmd_route(path: &str, options: &Options) -> Result<(), String> {
    let circuit = load_circuit(path, options.optimize)?;
    if circuit.num_qubits() > options.device.num_qubits() {
        return Err(format!(
            "{} needs {} qubits but {} has {}",
            path,
            circuit.num_qubits(),
            options.device.name(),
            options.device.num_qubits()
        ));
    }
    let routed = route_one(&circuit, options)?;
    println!(
        "{} on {} via {}:",
        path,
        options.device.name(),
        options.router
    );
    println!("  input gates:     {}", circuit.len());
    println!("  output gates:    {}", routed.gate_count());
    println!("  swaps inserted:  {}", routed.swaps_inserted);
    println!("  weighted depth:  {}", routed.weighted_depth);
    println!("  depth:           {}", routed.depth());
    println!("  verified:        coupling + semantics OK");
    if options.emit {
        let qasm = circuit_to_qasm(&routed.circuit).map_err(|e| e.to_string())?;
        println!("\n{qasm}");
    }
    Ok(())
}

fn cmd_compare(path: &str, options: &Options) -> Result<(), String> {
    let circuit = load_circuit(path, options.optimize)?;
    println!(
        "{path} on {} (same initial mapping for all routers):",
        options.device.name()
    );
    println!(
        "{:<10}{:>14}{:>10}{:>12}",
        "router", "weighted D", "swaps", "gate count"
    );
    let mut results = Vec::new();
    for router in ["codar", "sabre", "greedy"] {
        let opts = Options {
            device: options.device.clone(),
            router: router.to_string(),
            optimize: options.optimize,
            emit: false,
            seed: options.seed,
        };
        let routed = route_one(&circuit, &opts)?;
        println!(
            "{:<10}{:>14}{:>10}{:>12}",
            router,
            routed.weighted_depth,
            routed.swaps_inserted,
            routed.gate_count()
        );
        results.push((router, routed.weighted_depth));
    }
    if let (Some(codar), Some(sabre)) = (
        results.iter().find(|(r, _)| *r == "codar"),
        results.iter().find(|(r, _)| *r == "sabre"),
    ) {
        println!(
            "\nspeedup (sabre/codar): {:.3}",
            sabre.1 as f64 / codar.1.max(1) as f64
        );
    }
    Ok(())
}

fn usage() -> &'static str {
    "usage:\n  codar devices\n  codar stats <file.qasm>\n  codar route <file.qasm> [--device NAME] [--router codar|sabre|greedy] [--optimize] [--emit] [--seed N]\n  codar compare <file.qasm> [--device NAME] [--optimize] [--seed N]"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match (cmd.as_str(), rest.split_first()) {
            ("devices", _) => {
                cmd_devices();
                Ok(())
            }
            ("stats", Some((path, _))) => cmd_stats(path),
            ("route", Some((path, flags))) => {
                parse_flags(flags).and_then(|options| cmd_route(path, &options))
            }
            ("compare", Some((path, flags))) => {
                parse_flags(flags).and_then(|options| cmd_compare(path, &options))
            }
            _ => Err(usage().to_string()),
        },
        None => Err(usage().to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
