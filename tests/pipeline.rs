//! End-to-end pipeline tests: OpenQASM source → IR → decomposition →
//! routing on every paper architecture → verification → QASM emission.

use codar_repro::arch::Device;
use codar_repro::benchmarks::corpus;
use codar_repro::circuit::decompose::decompose_three_qubit_gates;
use codar_repro::circuit::from_qasm::{circuit_from_source, circuit_to_qasm};
use codar_repro::router::sabre::reverse_traversal_mapping;
use codar_repro::router::verify::{check_coupling, check_equivalence};
use codar_repro::router::{CodarRouter, SabreRouter};

#[test]
fn every_corpus_program_routes_on_every_architecture() {
    for (name, src) in corpus::all() {
        let circuit = corpus::load(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let routable = decompose_three_qubit_gates(&circuit);
        for device in Device::paper_architectures() {
            if routable.num_qubits() > device.num_qubits() {
                continue;
            }
            let initial = reverse_traversal_mapping(&routable, &device, 0);
            let codar = CodarRouter::new(&device)
                .route_with_mapping(&routable, initial.clone())
                .unwrap_or_else(|e| panic!("codar {name} on {}: {e}", device.name()));
            let sabre = SabreRouter::new(&device)
                .route_with_mapping(&routable, initial)
                .unwrap_or_else(|e| panic!("sabre {name} on {}: {e}", device.name()));
            for routed in [&codar, &sabre] {
                check_coupling(&routed.circuit, &device)
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", device.name()));
                check_equivalence(&routable, routed)
                    .unwrap_or_else(|e| panic!("{name} on {}: {e}", device.name()));
            }
        }
    }
}

#[test]
fn routed_circuit_survives_qasm_round_trip() {
    let circuit = corpus::load(corpus::QFT4_QASM).expect("embedded source parses");
    let device = Device::ibm_q20_tokyo();
    let routed = CodarRouter::new(&device).route(&circuit).expect("fits");
    let qasm = circuit_to_qasm(&routed.circuit).expect("emittable");
    let reparsed = circuit_from_source(&qasm).expect("round trip parses");
    assert_eq!(reparsed.gates(), routed.circuit.gates());
}

#[test]
fn suite_subset_full_pipeline() {
    // A representative slice of the 71-benchmark suite through both
    // routers with verification (the full sweep is the fig8 binary).
    let device = Device::ibm_q20_tokyo();
    let suite = codar_repro::benchmarks::full_suite();
    let names = [
        "qft_8", "adder_3", "ising_8", "random_6", "bv_7", "grover_4",
    ];
    for name in names {
        let entry = suite
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("{name} in suite"));
        let initial = reverse_traversal_mapping(&entry.circuit, &device, 1);
        let codar = CodarRouter::new(&device)
            .route_with_mapping(&entry.circuit, initial.clone())
            .expect("fits");
        let sabre = SabreRouter::new(&device)
            .route_with_mapping(&entry.circuit, initial)
            .expect("fits");
        for routed in [&codar, &sabre] {
            check_coupling(&routed.circuit, &device).expect("coupling");
            check_equivalence(&entry.circuit, routed).expect("equivalence");
            // Weighted depth of a routed circuit can never beat the
            // coupling-free lower bound of the original program.
            let tau = device.durations().clone();
            let lower =
                codar_repro::circuit::schedule::busy_time_lower_bound(&entry.circuit, |g| {
                    tau.of(g)
                });
            assert!(
                routed.weighted_depth >= lower,
                "{name}: {} < lower bound {lower}",
                routed.weighted_depth
            );
        }
    }
}

#[test]
fn whole_suite_is_loadable_and_sized() {
    let suite = codar_repro::benchmarks::full_suite();
    assert_eq!(suite.len(), 71);
    let total_gates: usize = suite.iter().map(|e| e.circuit.len()).sum();
    assert!(
        total_gates > 35_000,
        "suite totals only {total_gates} gates"
    );
    let largest = suite.iter().map(|e| e.circuit.len()).max().unwrap_or(0);
    assert!(largest >= 15_000, "largest benchmark only {largest} gates");
}
