//! Cross-router equivalence: for random circuits, CODAR- and
//! SABRE-routed outputs must both pass `codar_router::verify` **and**
//! simulate to the same measurement distribution as the original
//! logical circuit (via `codar_sim`, un-permuting the final mapping).
//!
//! This is stronger than the structural check alone: it catches any
//! disagreement between the verifier's mapping bookkeeping and what
//! the inserted SWAPs physically do to the state.

use codar_repro::arch::Device;
use codar_repro::benchmarks::generators::{ghz_ladder, syndrome_cycle};
use codar_repro::circuit::Circuit;
use codar_repro::router::sabre::reverse_traversal_mapping;
use codar_repro::router::verify::{check_coupling, check_equivalence};
use codar_repro::router::{CodarRouter, RoutedCircuit, SabreRouter};
use codar_repro::sim::backend::check_routed_equivalence_stabilizer;
use codar_repro::sim::exec::run_ideal;
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// Strategy: a random *unitary* circuit (no measurements, so ideal
/// simulation yields the exact measurement distribution).
fn random_unitary_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0u8..12, 0..n, 0..n, 0.0..std::f64::consts::PI);
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |ops| {
        let mut c = Circuit::new(n);
        for (kind, a, b, angle) in ops {
            let b = if a == b { (a + 1) % n } else { b };
            match kind {
                0 => c.h(a),
                1 => c.t(a),
                2 => c.s(a),
                3 => c.x(a),
                4 => c.rz(angle, a),
                5 => c.rx(angle, a),
                6 => c.ry(angle, a),
                7 => c.cx(a, b),
                8 => c.cz(a, b),
                9 => c.cu1(angle, a, b),
                10 => c.rzz(angle, a, b),
                _ => c.swap(a, b),
            }
        }
        c
    })
}

/// Measurement distribution of the *logical* circuit encoded in a
/// routed physical circuit: simulates the physical circuit and folds
/// every physical basis state onto logical bitstrings through the
/// final mapping. Physical qubits holding no logical qubit must stay
/// in |0> (they only ever participate in router-inserted SWAPs).
fn logical_distribution(routed: &RoutedCircuit, num_logical: usize) -> Vec<f64> {
    let state = run_ideal(&routed.circuit);
    let phys_n = routed.circuit.num_qubits();
    let mut dist = vec![0.0; 1 << num_logical];
    for idx in 0..(1usize << phys_n) {
        let p = state.probability_of(idx);
        if p <= 0.0 {
            continue;
        }
        for phys in 0..phys_n {
            if routed.final_mapping.logical_of(phys).is_none() {
                assert_eq!(
                    (idx >> phys) & 1,
                    0,
                    "unmapped physical qubit {phys} left |0> (p={p})"
                );
            }
        }
        let mut logical_idx = 0usize;
        for l in 0..num_logical {
            logical_idx |= ((idx >> routed.final_mapping.phys_of(l)) & 1) << l;
        }
        dist[logical_idx] += p;
    }
    dist
}

/// Distribution of the original logical circuit, padded to nothing —
/// simulated directly on its own qubits.
fn reference_distribution(circuit: &Circuit) -> Vec<f64> {
    let state = run_ideal(circuit);
    (0..(1usize << circuit.num_qubits()))
        .map(|idx| state.probability_of(idx))
        .collect()
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// The physical→logical mapping slice the stabilizer check consumes,
/// read off the routed circuit's final mapping.
fn logical_of(routed: &RoutedCircuit) -> Vec<Option<usize>> {
    (0..routed.circuit.num_qubits())
        .map(|phys| routed.final_mapping.logical_of(phys))
        .collect()
}

/// Whole-device-scale equivalence: the dense distribution checks above
/// stop at a handful of qubits, but the stabilizer backend compares
/// canonical tableaus exactly at any width. Route Clifford workloads
/// that fill the *entire* device — Q20 Tokyo, the 6×6 grid, and the
/// 127-qubit Eagle heavy-hex — with both routers and prove each routed
/// circuit still prepares the original state.
#[test]
fn routed_clifford_circuits_verify_at_whole_device_scale() {
    for device in [
        Device::ibm_q20_tokyo(),
        Device::grid(6, 6),
        Device::ibm_eagle127(),
    ] {
        let n = device.num_qubits();
        // Both workloads span every qubit of the device: the log-depth
        // GHZ ladder and repetition-code syndrome extraction (distance
        // chosen so data + ancilla chains fill the register).
        let circuits = [
            ("ghz_ladder", ghz_ladder(n)),
            ("syndrome_cycle", syndrome_cycle(n.div_ceil(2), 2)),
        ];
        for (name, circuit) in circuits {
            let initial = reverse_traversal_mapping(&circuit, &device, 0);
            let codar = CodarRouter::new(&device)
                .route_with_mapping(&circuit, initial.clone())
                .expect("fits the device");
            let sabre = SabreRouter::new(&device)
                .route_with_mapping(&circuit, initial)
                .expect("fits the device");
            for (router, routed) in [("codar", &codar), ("sabre", &sabre)] {
                check_coupling(&routed.circuit, &device)
                    .unwrap_or_else(|e| panic!("{router} {name} on {device}: coupling {e}"));
                check_routed_equivalence_stabilizer(&circuit, &routed.circuit, &logical_of(routed))
                    .unwrap_or_else(|e| panic!("{router} {name} on {device}: {e}"));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: verify passes for both routers and all
    /// three distributions (logical, CODAR-routed, SABRE-routed) agree.
    #[test]
    fn codar_and_sabre_agree_with_the_logical_circuit(
        circuit in random_unitary_circuit(5, 30),
        seed in 0u64..64,
    ) {
        let device = Device::grid(2, 3);
        let initial = reverse_traversal_mapping(&circuit, &device, seed);
        let codar = CodarRouter::new(&device)
            .route_with_mapping(&circuit, initial.clone())
            .expect("5 qubits fit a 6-qubit grid");
        let sabre = SabreRouter::new(&device)
            .route_with_mapping(&circuit, initial)
            .expect("5 qubits fit a 6-qubit grid");

        // Both outputs satisfy the structural contract...
        check_coupling(&codar.circuit, &device).expect("codar respects coupling");
        check_coupling(&sabre.circuit, &device).expect("sabre respects coupling");
        check_equivalence(&circuit, &codar).expect("codar preserves semantics");
        check_equivalence(&circuit, &sabre).expect("sabre preserves semantics");

        // ...and the physics agrees: identical measurement distributions.
        let reference = reference_distribution(&circuit);
        let codar_dist = logical_distribution(&codar, circuit.num_qubits());
        let sabre_dist = logical_distribution(&sabre, circuit.num_qubits());
        let codar_err = max_abs_diff(&reference, &codar_dist);
        let sabre_err = max_abs_diff(&reference, &sabre_dist);
        prop_assert!(
            codar_err < EPS,
            "codar distribution diverges by {codar_err:e}"
        );
        prop_assert!(
            sabre_err < EPS,
            "sabre distribution diverges by {sabre_err:e}"
        );
        // Sanity: the distributions are distributions.
        prop_assert!((codar_dist.iter().sum::<f64>() - 1.0).abs() < EPS);
        prop_assert!((sabre_dist.iter().sum::<f64>() - 1.0).abs() < EPS);
    }

    /// Same property on a sparser topology (a line forces long SWAP
    /// chains, stressing the mapping bookkeeping harder).
    #[test]
    fn routers_agree_on_a_line_topology(
        circuit in random_unitary_circuit(4, 20),
        seed in 0u64..32,
    ) {
        let device = Device::linear(5);
        let initial = reverse_traversal_mapping(&circuit, &device, seed);
        let codar = CodarRouter::new(&device)
            .route_with_mapping(&circuit, initial.clone())
            .expect("fits");
        let sabre = SabreRouter::new(&device)
            .route_with_mapping(&circuit, initial)
            .expect("fits");
        check_equivalence(&circuit, &codar).expect("codar preserves semantics");
        check_equivalence(&circuit, &sabre).expect("sabre preserves semantics");
        let reference = reference_distribution(&circuit);
        let codar_err = max_abs_diff(&reference, &logical_distribution(&codar, 4));
        let sabre_err = max_abs_diff(&reference, &logical_distribution(&sabre, 4));
        prop_assert!(codar_err < EPS, "codar diverges by {codar_err:e}");
        prop_assert!(sabre_err < EPS, "sabre diverges by {sabre_err:e}");
    }
}
