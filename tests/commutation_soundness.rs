//! Soundness of the structural commutation rules (paper Sec. IV-B),
//! verified against the state-vector simulator: whenever `commutes(a, b)`
//! claims two unitary gates commute, applying them in either order must
//! give the same state on random inputs.
//!
//! This is the property CODAR's correctness rests on — a false positive
//! here would let the router reorder gates illegally.

use codar_repro::circuit::{commutes, Circuit, Gate, GateKind};
use codar_repro::sim::exec::run_ideal;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 4;

/// Builds one random gate over `N` qubits from proptest raw material.
fn make_gate(kind_pick: u8, qubit_picks: (usize, usize, usize), angle: f64) -> Gate {
    let kinds = GateKind::all_unitary();
    let kind = kinds[kind_pick as usize % kinds.len()];
    let arity = kind.arity().expect("unitary kinds have fixed arity");
    let (a, b, c) = qubit_picks;
    let a = a % N;
    let mut b = b % N;
    let mut c = c % N;
    if arity >= 2 && b == a {
        b = (a + 1) % N;
    }
    if arity >= 3 {
        while c == a || c == b {
            c = (c + 1) % N;
        }
    }
    let qubits = match arity {
        1 => vec![a],
        2 => vec![a, b],
        _ => vec![a, b, c],
    };
    let params = vec![angle; kind.num_params()];
    Gate::new(kind, qubits, params)
}

fn random_prep(seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prep = Circuit::new(N);
    for q in 0..N {
        prep.add(
            GateKind::U3,
            vec![q],
            vec![
                rng.gen::<f64>() * 3.0,
                rng.gen::<f64>() * 3.0,
                rng.gen::<f64>() * 3.0,
            ],
        );
    }
    // Entangle so two-qubit reorderings are visible.
    prep.cx(0, 1);
    prep.cx(2, 3);
    prep.cx(1, 2);
    prep
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn claimed_commutation_is_real(
        k1 in 0u8..=255,
        k2 in 0u8..=255,
        q1 in (0usize..N, 0usize..N, 0usize..N),
        q2 in (0usize..N, 0usize..N, 0usize..N),
        angle1 in 0.1f64..3.0,
        angle2 in 0.1f64..3.0,
        seed in 0u64..1000,
    ) {
        let a = make_gate(k1, q1, angle1);
        let b = make_gate(k2, q2, angle2);
        prop_assume!(commutes(&a, &b));
        let prep = random_prep(seed);
        let run = |first: &Gate, second: &Gate| {
            let mut c = prep.clone();
            c.push(first.clone());
            c.push(second.clone());
            run_ideal(&c)
        };
        let ab = run(&a, &b);
        let ba = run(&b, &a);
        let fidelity = ab.fidelity_with(&ba);
        prop_assert!(
            (fidelity - 1.0).abs() < 1e-9,
            "claimed commuting pair diverges: {a} vs {b} (fidelity {fidelity})"
        );
    }
}

/// The specific pairs the paper's mechanism depends on, exhaustively.
#[test]
fn paper_critical_pairs_commute_physically() {
    let pairs: Vec<(Gate, Gate)> = vec![
        // CNOTs sharing a target (the Sec. IV-B example).
        (
            Gate::new(GateKind::Cx, vec![1, 3], vec![]),
            Gate::new(GateKind::Cx, vec![2, 3], vec![]),
        ),
        // CNOTs sharing a control.
        (
            Gate::new(GateKind::Cx, vec![0, 1], vec![]),
            Gate::new(GateKind::Cx, vec![0, 2], vec![]),
        ),
        // Diagonal gate on a CNOT control.
        (
            Gate::new(GateKind::T, vec![0], vec![]),
            Gate::new(GateKind::Cx, vec![0, 1], vec![]),
        ),
        // X-type gate on a CNOT target.
        (
            Gate::new(GateKind::Rx, vec![1], vec![0.7]),
            Gate::new(GateKind::Cx, vec![0, 1], vec![]),
        ),
        // CZ with CX control overlap.
        (
            Gate::new(GateKind::Cz, vec![0, 2], vec![]),
            Gate::new(GateKind::Cx, vec![0, 1], vec![]),
        ),
        // RZZ with a diagonal single-qubit gate.
        (
            Gate::new(GateKind::Rzz, vec![1, 2], vec![0.5]),
            Gate::new(GateKind::Rz, vec![1], vec![0.3]),
        ),
        // Toffoli sharing controls with a CX.
        (
            Gate::new(GateKind::Ccx, vec![0, 1, 3], vec![]),
            Gate::new(GateKind::Cx, vec![0, 2], vec![]),
        ),
    ];
    for (a, b) in pairs {
        assert!(commutes(&a, &b), "{a} should commute with {b}");
        let prep = random_prep(17);
        let run = |first: &Gate, second: &Gate| {
            let mut c = prep.clone();
            c.push(first.clone());
            c.push(second.clone());
            run_ideal(&c)
        };
        let fidelity = run(&a, &b).fidelity_with(&run(&b, &a));
        assert!(
            (fidelity - 1.0).abs() < 1e-9,
            "{a} / {b}: fidelity {fidelity}"
        );
    }
}

/// Sanity: the checker is not trivially returning `true` — known
/// non-commuting pairs are rejected and physically diverge.
#[test]
fn non_commuting_pairs_are_rejected() {
    let pairs: Vec<(Gate, Gate)> = vec![
        (
            Gate::new(GateKind::H, vec![0], vec![]),
            Gate::new(GateKind::T, vec![0], vec![]),
        ),
        (
            Gate::new(GateKind::Cx, vec![0, 1], vec![]),
            Gate::new(GateKind::Cx, vec![1, 0], vec![]),
        ),
        (
            Gate::new(GateKind::Cx, vec![0, 1], vec![]),
            Gate::new(GateKind::Cx, vec![1, 2], vec![]),
        ),
        (
            Gate::new(GateKind::X, vec![0], vec![]),
            Gate::new(GateKind::Cx, vec![0, 1], vec![]),
        ),
    ];
    for (a, b) in pairs {
        assert!(!commutes(&a, &b), "{a} must not commute with {b}");
        let prep = random_prep(23);
        let run = |first: &Gate, second: &Gate| {
            let mut c = prep.clone();
            c.push(first.clone());
            c.push(second.clone());
            run_ideal(&c)
        };
        let fidelity = run(&a, &b).fidelity_with(&run(&b, &a));
        assert!(
            fidelity < 1.0 - 1e-6,
            "{a} / {b} actually commute (fidelity {fidelity}) — rule too conservative is fine, but this pair was chosen to diverge"
        );
    }
}
