//! Every device preset can host routed programs: the fidelity-suite
//! algorithms route onto each preset (where they fit) with full
//! verification, exercising heavy-hex, octagonal, diagonal-lattice and
//! bow-tie topologies alongside the paper's four.

use codar_repro::arch::Device;
use codar_repro::benchmarks::suite::fidelity_suite;
use codar_repro::router::sabre::reverse_traversal_mapping;
use codar_repro::router::verify::{check_coupling, check_equivalence};
use codar_repro::router::{CodarRouter, GreedyRouter, SabreRouter};

#[test]
fn every_preset_routes_the_fidelity_suite() {
    for (alias, device) in Device::presets() {
        for entry in fidelity_suite() {
            if entry.num_qubits > device.num_qubits() {
                continue;
            }
            let initial = reverse_traversal_mapping(&entry.circuit, &device, 0);
            let routed = CodarRouter::new(&device)
                .route_with_mapping(&entry.circuit, initial)
                .unwrap_or_else(|e| panic!("{alias}/{}: {e}", entry.name));
            check_coupling(&routed.circuit, &device)
                .unwrap_or_else(|e| panic!("{alias}/{}: {e}", entry.name));
            check_equivalence(&entry.circuit, &routed)
                .unwrap_or_else(|e| panic!("{alias}/{}: {e}", entry.name));
        }
    }
}

#[test]
fn all_three_routers_agree_on_validity() {
    let device = Device::ibm_falcon27();
    let suite = fidelity_suite();
    let entry = suite.iter().find(|e| e.name == "qft_5").expect("qft_5");
    let initial = reverse_traversal_mapping(&entry.circuit, &device, 3);
    let codar = CodarRouter::new(&device)
        .route_with_mapping(&entry.circuit, initial.clone())
        .expect("codar routes");
    let sabre = SabreRouter::new(&device)
        .route_with_mapping(&entry.circuit, initial.clone())
        .expect("sabre routes");
    let greedy = GreedyRouter::new(&device)
        .route_with_mapping(&entry.circuit, initial)
        .expect("greedy routes");
    for routed in [&codar, &sabre, &greedy] {
        check_coupling(&routed.circuit, &device).expect("coupling");
        check_equivalence(&entry.circuit, routed).expect("equivalence");
    }
    // Heuristic routers should not lose to the naive baseline by much;
    // typically they win. Allow slack but catch gross regressions.
    assert!(codar.weighted_depth <= greedy.weighted_depth * 2);
    assert!(sabre.weighted_depth <= greedy.weighted_depth * 2);
}

#[test]
fn heavy_hex_sparse_topology_is_routable_end_to_end() {
    // Heavy-hex graphs have degree <= 3 and long detours; a ring
    // workload is a worst case for them.
    let device = Device::ibm_falcon27();
    let mut ring = codar_repro::circuit::Circuit::new(12);
    for i in 0..12usize {
        ring.cx(i, (i + 1) % 12);
    }
    let initial = reverse_traversal_mapping(&ring, &device, 0);
    let routed = CodarRouter::new(&device)
        .route_with_mapping(&ring, initial)
        .expect("fits");
    check_coupling(&routed.circuit, &device).expect("coupling");
    check_equivalence(&ring, &routed).expect("equivalence");
}
