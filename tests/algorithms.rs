//! Functional correctness of the benchmark generators, verified by
//! simulation: the benchmarks are real algorithms, not just gate soup.

use codar_repro::benchmarks::generators;
use codar_repro::circuit::decompose::decompose_three_qubit_gates;
use codar_repro::circuit::Circuit;
use codar_repro::sim::exec::{run_ideal, strip_measurements};
use codar_repro::sim::measure::sample_counts;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn ghz_is_a_cat_state() {
    let state = run_ideal(&generators::ghz(5));
    assert!((state.probability_of(0) - 0.5).abs() < 1e-12);
    assert!((state.probability_of(0b11111) - 0.5).abs() < 1e-12);
}

#[test]
fn w_state_spreads_one_excitation() {
    for n in [2usize, 3, 5] {
        let state = run_ideal(&generators::w_state(n));
        for q in 0..n {
            let p = state.probability_of(1 << q);
            assert!(
                (p - 1.0 / n as f64).abs() < 1e-9,
                "n={n}: P[q{q}] = {p}, want {}",
                1.0 / n as f64
            );
        }
        // Nothing outside the single-excitation subspace.
        let total: f64 = (0..n).map(|q| state.probability_of(1 << q)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

#[test]
fn bernstein_vazirani_reads_the_secret() {
    let secret = 0b10110u64;
    let circuit = generators::bernstein_vazirani(5, secret);
    let state = run_ideal(&strip_measurements(&circuit));
    // Data register (qubits 0..5) must spell the secret; ancilla (q5)
    // is in |-> so both ancilla branches carry the same data bits.
    let mut rng = StdRng::seed_from_u64(0);
    let counts = sample_counts(&state, 200, &mut rng);
    for (&index, _) in &counts {
        assert_eq!(index as u64 & 0b11111, secret, "read {index:b}");
    }
}

#[test]
fn deutsch_jozsa_distinguishes() {
    // Constant oracle: data register returns to |0..0>.
    let constant = generators::deutsch_jozsa(4, false);
    let state = run_ideal(&strip_measurements(&constant));
    let mut p_zero_data = 0.0;
    for anc in 0..2usize {
        p_zero_data += state.probability_of(anc << 4);
    }
    assert!((p_zero_data - 1.0).abs() < 1e-9);
    // Balanced oracle: probability of all-zero data is 0.
    let balanced = generators::deutsch_jozsa(4, true);
    let state = run_ideal(&strip_measurements(&balanced));
    let mut p_zero_data = 0.0;
    for anc in 0..2usize {
        p_zero_data += state.probability_of(anc << 4);
    }
    assert!(p_zero_data < 1e-9);
}

#[test]
fn grover_amplifies_the_marked_item() {
    // 3 data qubits, marked item |111>, one iteration ~ 78% success.
    let circuit = decompose_three_qubit_gates(&generators::grover(3, 1));
    let state = run_ideal(&circuit);
    // Probability of data register = 111 (ancilla in any state).
    let mut p = 0.0;
    for rest in 0..(1usize << (circuit.num_qubits() - 3)) {
        p += state.probability_of(0b111 | (rest << 3));
    }
    assert!(p > 0.7, "marked-item probability {p}");
}

#[test]
fn qft_of_zero_is_uniform() {
    let state = run_ideal(&generators::qft(4));
    for index in 0..16 {
        assert!((state.probability_of(index) - 1.0 / 16.0).abs() < 1e-9);
    }
}

#[test]
fn phase_estimation_recovers_exact_phase() {
    // phase = 5/16 is exactly representable in 4 bits, so a single
    // basis state carries all the probability. The swap-free inverse
    // QFT leaves the counting register bit-reversed (the usual
    // convention when terminal swaps are elided).
    let circuit = generators::phase_estimation(4, 5.0 / 16.0);
    let state = run_ideal(&strip_measurements(&circuit));
    let index = (0..32)
        .max_by(|&i, &j| {
            state
                .probability_of(i)
                .partial_cmp(&state.probability_of(j))
                .expect("probabilities compare")
        })
        .expect("non-empty");
    assert!(
        (state.probability_of(index) - 1.0).abs() < 1e-6,
        "P[{index:b}] = {}",
        state.probability_of(index)
    );
    // Target qubit 4 stays in |1>.
    assert_eq!(index >> 4, 1);
    // Decode the bit-reversed counting register.
    let counting = index & 0b1111;
    let decoded = (0..4).fold(0usize, |acc, b| acc | (((counting >> b) & 1) << (3 - b)));
    assert_eq!(decoded, 5, "decoded phase register");
}

#[test]
fn cuccaro_adder_adds() {
    // cuccaro_adder(n) preloads a = 1..1 (all ones) and b = ..0101; the
    // sum lands in b with carry-out. Verify via simulation for n=3:
    // a = 0b111 = 7, b = 0b101 = 5, sum = 12 = 0b1100 -> b=0b100, cout=1.
    let circuit = decompose_three_qubit_gates(&generators::cuccaro_adder(3));
    let state = run_ideal(&circuit);
    // Find the single basis state with probability 1.
    let amps = state.amplitudes();
    let index = (0..amps.len())
        .max_by(|&i, &j| {
            state
                .probability_of(i)
                .partial_cmp(&state.probability_of(j))
                .expect("probabilities are comparable")
        })
        .expect("non-empty");
    assert!((state.probability_of(index) - 1.0).abs() < 1e-9);
    // Layout: cin=0, a_i = 1+2i, b_i = 2+2i, cout = 7.
    let bit = |q: usize| (index >> q) & 1;
    let b_out = bit(2) | (bit(4) << 1) | (bit(6) << 2);
    let cout = bit(7);
    let a_out = bit(1) | (bit(3) << 1) | (bit(5) << 2);
    assert_eq!(a_out, 0b111, "a register must be restored");
    assert_eq!(b_out + (cout << 3), 7 + 5, "sum in b + carry");
}

#[test]
fn bit_flip_code_round_trips_without_errors() {
    // With no injected errors every syndrome reads 0 and the decoded
    // data qubit matches direct preparation.
    let circuit = generators::bit_flip_code(2);
    let state = run_ideal(&strip_measurements(&circuit));
    let mut reference = Circuit::new(5);
    reference.ry(0.7, 0);
    let expected = run_ideal(&reference);
    assert!(
        (state.fidelity_with(&expected) - 1.0).abs() < 1e-9,
        "fidelity {}",
        state.fidelity_with(&expected)
    );
}

#[test]
fn hidden_shift_output_is_classical() {
    // The hidden-shift circuit family used here produces a deterministic
    // computational-basis outcome (self-inverse bent function).
    let circuit = generators::hidden_shift(6, 0b101101);
    let state = run_ideal(&circuit);
    let max_p = (0..64)
        .map(|i| state.probability_of(i))
        .fold(0.0f64, f64::max);
    assert!((max_p - 1.0).abs() < 1e-9, "max probability {max_p}");
}
