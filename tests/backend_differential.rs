//! Backend differential tests: the stabilizer and sparse simulation
//! backends must be *bit-identical* to the dense statevector reference
//! — not approximately equal. Every backend consumes the seeded RNG in
//! the same order (gate-level measurements first, then sampling), so
//! for the same `(circuit, seed, shots)` the three engines must emit
//! the same outcome multiset, down to the last shot.
//!
//! Coverage:
//! * every ≤20-qubit Clifford circuit in the 71-entry evaluation suite
//!   (stabilizer vs dense),
//! * every ≤20-qubit few-T circuit in the suite (sparse vs dense),
//! * random Clifford circuits: `auto` must select the stabilizer
//!   backend and still match dense shot-for-shot,
//! * the engine's `sim` axis across the full device catalog: suite
//!   summaries byte-identical between 1 and 4 worker threads.

use codar_repro::arch::Device;
use codar_repro::benchmarks::suite::{full_suite, SuiteEntry};
use codar_repro::circuit::Circuit;
use codar_repro::engine::{Backend, EngineConfig, SuiteRunner};
use codar_repro::sim::backend::{classify, run_counts, AUTO_SPARSE_MAX_NON_CLIFFORD};
use codar_repro::sim::SimBackend;
use proptest::prelude::*;

const SHOTS: usize = 48;

/// Seeds per circuit: two on small registers, one once the dense
/// reference itself gets expensive.
fn seeds_for(qubits: usize) -> &'static [u64] {
    if qubits <= 14 {
        &[1, 0xC0DA]
    } else {
        &[1]
    }
}

/// Stabilizer vs dense on every Clifford-only suite circuit that the
/// dense reference can still run: identical outcome multisets under
/// identical seeds.
#[test]
fn suite_clifford_circuits_match_dense_on_the_stabilizer_backend() {
    let mut covered = 0;
    for entry in full_suite() {
        if entry.circuit.num_qubits() > 20 || classify(&entry.circuit).non_clifford != 0 {
            continue;
        }
        covered += 1;
        for &seed in seeds_for(entry.circuit.num_qubits()) {
            let (kind, dense) =
                run_counts(Backend::Dense, &entry.circuit, SHOTS, seed).expect(&entry.name);
            assert_eq!(kind, SimBackend::Dense);
            let (kind, stab) =
                run_counts(Backend::Stabilizer, &entry.circuit, SHOTS, seed).expect(&entry.name);
            assert_eq!(kind, SimBackend::Stabilizer);
            assert_eq!(stab, dense, "{} diverges at seed {seed}", entry.name);
        }
    }
    assert!(covered >= 8, "only {covered} Clifford suite circuits");
}

/// Sparse vs dense on every few-T suite circuit (at most the auto
/// threshold of non-Clifford gates): the sparse engine is a bitwise
/// twin of dense, so even the rounding residue must agree.
#[test]
fn suite_few_t_circuits_match_dense_on_the_sparse_backend() {
    let mut covered = 0;
    for entry in full_suite() {
        let info = classify(&entry.circuit);
        if entry.circuit.num_qubits() > 20 || info.non_clifford > AUTO_SPARSE_MAX_NON_CLIFFORD {
            continue;
        }
        covered += 1;
        for &seed in seeds_for(entry.circuit.num_qubits()) {
            let (kind, dense) =
                run_counts(Backend::Dense, &entry.circuit, SHOTS, seed).expect(&entry.name);
            assert_eq!(kind, SimBackend::Dense);
            let (kind, sparse) =
                run_counts(Backend::Sparse, &entry.circuit, SHOTS, seed).expect(&entry.name);
            assert_eq!(kind, SimBackend::Sparse);
            assert_eq!(sparse, dense, "{} diverges at seed {seed}", entry.name);
        }
    }
    assert!(covered >= 12, "only {covered} few-T suite circuits");
}

/// Strategy: a random Clifford circuit (tableau-simulable gates only,
/// including mid-circuit measurement and reset).
fn random_clifford_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0u8..11, 0..n, 0..n);
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |ops| {
        let mut c = Circuit::with_bits(n, n);
        for (kind, a, b) in ops {
            let b = if a == b { (a + 1) % n } else { b };
            match kind {
                0 => c.h(a),
                1 => c.s(a),
                2 => c.sdg(a),
                3 => c.x(a),
                4 => c.y(a),
                5 => c.z(a),
                6 => c.cx(a, b),
                7 => c.cz(a, b),
                8 => c.swap(a, b),
                9 => c.measure(a, a),
                _ => c.add(codar_repro::circuit::GateKind::Reset, vec![a], vec![]),
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Auto-selection picks the stabilizer backend for any Clifford
    /// circuit, and its shots match the explicit dense run bit for bit.
    #[test]
    fn auto_selects_stabilizer_and_matches_dense(
        circuit in random_clifford_circuit(6, 40),
        seed in 0u64..1024,
    ) {
        let resolved = Backend::Auto.resolve(&circuit).expect("clifford resolves");
        prop_assert_eq!(resolved, SimBackend::Stabilizer);
        let (kind, auto_counts) =
            run_counts(Backend::Auto, &circuit, 32, seed).expect("auto runs");
        prop_assert_eq!(kind, SimBackend::Stabilizer);
        let (_, dense_counts) =
            run_counts(Backend::Dense, &circuit, 32, seed).expect("dense runs");
        prop_assert_eq!(auto_counts, dense_counts);
    }

    /// The engine's sim axis across the preset device catalog: a
    /// random Clifford circuit routes with the differential stabilizer
    /// check on every preset, every report row carries the stabilizer
    /// label, and the summary JSON is byte-identical between one and
    /// four worker threads.
    #[test]
    fn suite_runner_sim_axis_is_thread_invariant_across_the_catalog(
        circuit in random_clifford_circuit(5, 24),
        device_index in 0usize..8,
        seed in 0u64..64,
    ) {
        let (name, _) = Device::presets()[device_index].clone();
        let run = |threads: usize| {
            let (_, device) = Device::presets()[device_index].clone();
            SuiteRunner::new(EngineConfig {
                threads,
                seed,
                ..EngineConfig::default()
            })
            .device(device)
            .entries(vec![SuiteEntry {
                name: "random_clifford".into(),
                num_qubits: circuit.num_qubits(),
                circuit: circuit.clone(),
            }])
            .sim_backend(Backend::Auto)
            .run()
        };
        let one = run(1);
        let four = run(4);
        prop_assert!(one.failures.is_empty(), "{name}: {:?}", one.failures);
        prop_assert_eq!(one.summary.to_json(), four.summary.to_json());
        for row in &one.summary.rows {
            prop_assert_eq!(row.sim.as_deref(), Some("stabilizer"));
        }
    }
}
