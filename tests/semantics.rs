//! Semantic preservation, checked by full state-vector simulation:
//! a routed circuit, undone through its tracked mapping, must implement
//! exactly the same unitary as the original program.

use codar_repro::arch::Device;
use codar_repro::circuit::{Circuit, GateKind};
use codar_repro::router::verify::reconstruct_logical;
use codar_repro::router::{CodarConfig, CodarRouter, InitialMapping, SabreRouter};
use codar_repro::sim::exec::run_ideal;
use codar_repro::sim::StateVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Prepends a seeded random product-state preparation so circuits are
/// compared on a non-trivial input, then simulates both and compares.
fn assert_same_unitary(original: &Circuit, reconstructed: &Circuit, seed: u64) {
    assert_eq!(original.num_qubits(), reconstructed.num_qubits());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prep = Circuit::new(original.num_qubits());
    for q in 0..original.num_qubits() {
        prep.add(
            GateKind::U3,
            vec![q],
            vec![
                rng.gen::<f64>() * 3.0,
                rng.gen::<f64>() * 3.0,
                rng.gen::<f64>() * 3.0,
            ],
        );
    }
    let run = |circuit: &Circuit| -> StateVector {
        let mut all = prep.clone();
        for g in circuit.gates() {
            all.push(g.clone());
        }
        run_ideal(&all)
    };
    let a = run(original);
    let b = run(reconstructed);
    let fidelity = a.fidelity_with(&b);
    assert!(
        (fidelity - 1.0).abs() < 1e-9,
        "states diverge: fidelity {fidelity}"
    );
}

fn interesting_circuits() -> Vec<(&'static str, Circuit)> {
    let mut qft5 = Circuit::new(5);
    for i in 0..5usize {
        qft5.h(i);
        for j in i + 1..5 {
            qft5.cu1(std::f64::consts::PI / (1 << (j - i)) as f64, j, i);
        }
    }
    let mut commuting = Circuit::new(5);
    commuting.cx(1, 0);
    commuting.cx(2, 0);
    commuting.cx(3, 0);
    commuting.cx(4, 0);
    commuting.t(1);
    commuting.cx(0, 4);
    let mut mixed = Circuit::new(6);
    mixed.h(0);
    mixed.cx(0, 5);
    mixed.cz(5, 1);
    mixed.rzz(0.4, 1, 4);
    mixed.cx(4, 2);
    mixed.swap(2, 3);
    mixed.add(GateKind::Cu3, vec![3, 0], vec![0.1, 0.2, 0.3]);
    mixed.cx(0, 3);
    vec![("qft5", qft5), ("commuting", commuting), ("mixed", mixed)]
}

#[test]
fn codar_preserves_unitaries_on_line() {
    let device = Device::linear(6);
    for (name, circuit) in interesting_circuits() {
        let config = CodarConfig {
            initial_mapping: InitialMapping::Identity,
            ..CodarConfig::default()
        };
        let routed = CodarRouter::with_config(&device, config)
            .route(&circuit)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let reconstructed = reconstruct_logical(
            &routed.circuit,
            &routed.initial_mapping,
            circuit.num_qubits(),
            &routed.inserted_swap_indices,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_same_unitary(&circuit, &reconstructed, 42);
    }
}

#[test]
fn codar_preserves_unitaries_on_grid_with_spare_qubits() {
    let device = Device::grid(3, 3);
    for (name, circuit) in interesting_circuits() {
        let routed = CodarRouter::new(&device)
            .route(&circuit)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let reconstructed = reconstruct_logical(
            &routed.circuit,
            &routed.initial_mapping,
            circuit.num_qubits(),
            &routed.inserted_swap_indices,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_same_unitary(&circuit, &reconstructed, 7);
    }
}

#[test]
fn sabre_preserves_unitaries() {
    let device = Device::grid(2, 3);
    for (name, circuit) in interesting_circuits() {
        let routed = SabreRouter::new(&device)
            .route(&circuit)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let reconstructed = reconstruct_logical(
            &routed.circuit,
            &routed.initial_mapping,
            circuit.num_qubits(),
            &routed.inserted_swap_indices,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_same_unitary(&circuit, &reconstructed, 13);
    }
}

#[test]
fn ablated_codar_variants_preserve_unitaries() {
    let device = Device::grid(2, 3);
    let (_, circuit) = interesting_circuits().remove(2);
    for (flag, config) in [
        (
            "no durations",
            CodarConfig {
                initial_mapping: InitialMapping::Identity,
                enable_duration_awareness: false,
                ..CodarConfig::default()
            },
        ),
        (
            "no commutativity",
            CodarConfig {
                initial_mapping: InitialMapping::Identity,
                enable_commutativity: false,
                ..CodarConfig::default()
            },
        ),
        (
            "no hfine",
            CodarConfig {
                initial_mapping: InitialMapping::Identity,
                enable_hfine: false,
                ..CodarConfig::default()
            },
        ),
    ] {
        let routed = CodarRouter::with_config(&device, config)
            .route(&circuit)
            .unwrap_or_else(|e| panic!("{flag}: {e}"));
        let reconstructed = reconstruct_logical(
            &routed.circuit,
            &routed.initial_mapping,
            circuit.num_qubits(),
            &routed.inserted_swap_indices,
        )
        .unwrap_or_else(|e| panic!("{flag}: {e}"));
        assert_same_unitary(&circuit, &reconstructed, 99);
    }
}

#[test]
fn toffoli_decomposition_survives_routing() {
    // ccx → {1q, cx} → routed → reconstructed must still be a Toffoli.
    let mut original = Circuit::new(3);
    original.ccx(0, 1, 2);
    let decomposed = codar_repro::circuit::decompose::decompose_three_qubit_gates(&original);
    let device = Device::linear(3);
    let config = CodarConfig {
        initial_mapping: InitialMapping::Identity,
        ..CodarConfig::default()
    };
    let routed = CodarRouter::with_config(&device, config)
        .route(&decomposed)
        .expect("fits");
    let reconstructed = reconstruct_logical(
        &routed.circuit,
        &routed.initial_mapping,
        3,
        &routed.inserted_swap_indices,
    )
    .expect("valid");
    // Compare against the *original* Toffoli semantics.
    assert_same_unitary(&original, &reconstructed, 5);
}
