//! The ion-trap native basis (Table I): `r(θ,φ)` + Mølmer–Sørensen
//! `rxx`, and the CNOT-via-XX construction, verified by simulation.

use codar_repro::circuit::decompose::translate_to_ion_basis;
use codar_repro::circuit::{Circuit, GateKind};
use codar_repro::sim::exec::run_ideal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_equivalent(a: &Circuit, b: &Circuit, seed: u64) {
    assert_eq!(a.num_qubits(), b.num_qubits());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prep = Circuit::new(a.num_qubits());
    for q in 0..a.num_qubits() {
        prep.add(
            GateKind::U3,
            vec![q],
            vec![
                rng.gen::<f64>() * 3.0,
                rng.gen::<f64>() * 3.0,
                rng.gen::<f64>() * 3.0,
            ],
        );
    }
    let run = |c: &Circuit| {
        let mut all = prep.clone();
        for g in c.gates() {
            all.push(g.clone());
        }
        run_ideal(&all)
    };
    let f = run(a).fidelity_with(&run(b));
    assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
}

#[test]
fn r_gate_specializes_to_rx_and_ry() {
    for theta in [0.3, 1.2, -0.8] {
        let mut rx = Circuit::new(1);
        rx.rx(theta, 0);
        let mut r0 = Circuit::new(1);
        r0.add(GateKind::R, vec![0], vec![theta, 0.0]);
        assert_equivalent(&rx, &r0, 1);

        let mut ry = Circuit::new(1);
        ry.ry(theta, 0);
        let mut r90 = Circuit::new(1);
        r90.add(
            GateKind::R,
            vec![0],
            vec![theta, std::f64::consts::FRAC_PI_2],
        );
        assert_equivalent(&ry, &r90, 2);
    }
}

#[test]
fn rxx_matches_h_conjugated_rzz() {
    let theta = 0.9;
    let mut direct = Circuit::new(2);
    direct.add(GateKind::Rxx, vec![0, 1], vec![theta]);
    let mut conjugated = Circuit::new(2);
    conjugated.h(0);
    conjugated.h(1);
    conjugated.rzz(theta, 0, 1);
    conjugated.h(0);
    conjugated.h(1);
    assert_equivalent(&direct, &conjugated, 3);
}

#[test]
fn cnot_via_xx_is_exact() {
    // Table I / Sec. III-A: "CNOT gate can be implemented by a one-XX
    // and four-R".
    let mut cnot = Circuit::new(2);
    cnot.cx(0, 1);
    let ion = translate_to_ion_basis(&cnot);
    assert_eq!(ion.count_kind(GateKind::Rxx), 1);
    assert_eq!(ion.count_kind(GateKind::R), 4);
    assert_eq!(ion.count_kind(GateKind::Cx), 0);
    assert_equivalent(&cnot, &ion, 4);
}

#[test]
fn whole_programs_translate_exactly() {
    let mut qft3 = Circuit::new(3);
    for i in 0..3usize {
        qft3.h(i);
        for j in i + 1..3 {
            qft3.cu1(std::f64::consts::PI / (1 << (j - i)) as f64, j, i);
        }
    }
    let ion = translate_to_ion_basis(&qft3);
    for g in ion.gates() {
        assert!(
            matches!(g.kind, GateKind::R | GateKind::Rz | GateKind::Rxx),
            "non-native gate {g} survived translation"
        );
    }
    assert_equivalent(&qft3, &ion, 5);

    let mut mixed = Circuit::new(3);
    mixed.h(0);
    mixed.ccx(0, 1, 2);
    mixed.swap(1, 2);
    mixed.t(2);
    let ion = translate_to_ion_basis(&mixed);
    assert_equivalent(&mixed, &ion, 6);
}

#[test]
fn ion_translation_composes_with_routing() {
    use codar_repro::arch::Device;
    use codar_repro::router::{CodarConfig, CodarRouter, InitialMapping};
    // Route first (swaps become cx triples? no — swap is 2q and legal on
    // the device), then translate for execution on an ion chain with
    // all-to-all coupling: routing on the superconducting device, ion
    // translation for the trap — each stage checked by simulation.
    let mut circuit = Circuit::new(4);
    circuit.h(0);
    circuit.cx(0, 3);
    circuit.t(3);
    circuit.cx(3, 1);
    let device = Device::linear(4);
    let config = CodarConfig {
        initial_mapping: InitialMapping::Identity,
        ..CodarConfig::default()
    };
    let routed = CodarRouter::with_config(&device, config)
        .route(&circuit)
        .expect("fits");
    let logical = codar_repro::router::verify::reconstruct_logical(
        &routed.circuit,
        &routed.initial_mapping,
        4,
        &routed.inserted_swap_indices,
    )
    .expect("valid");
    let ion = translate_to_ion_basis(&logical);
    assert_equivalent(&circuit, &ion, 7);
}

#[test]
fn rxx_commutes_with_x_rotations() {
    use codar_repro::circuit::commutes;
    use codar_repro::circuit::Gate;
    let ms = Gate::new(GateKind::Rxx, vec![0, 1], vec![0.5]);
    let rx = Gate::new(GateKind::Rx, vec![0], vec![0.3]);
    let rz = Gate::new(GateKind::Rz, vec![0], vec![0.3]);
    assert!(commutes(&ms, &rx));
    assert!(!commutes(&ms, &rz));
    let ms2 = Gate::new(GateKind::Rxx, vec![1, 2], vec![0.25]);
    assert!(commutes(&ms, &ms2));
}
