//! Property-based tests (proptest): router invariants over random
//! circuits and architectures.

use codar_repro::arch::{CouplingGraph, Device, DistanceMatrix};
use codar_repro::circuit::{Circuit, GateKind};
use codar_repro::router::verify::{check_coupling, check_equivalence};
use codar_repro::router::{CodarConfig, CodarRouter, InitialMapping, SabreRouter};
use proptest::prelude::*;

/// Strategy: a random circuit over `n` qubits with 1q, 2q and barrier
/// operations.
fn random_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    let gate = (0..10u8, 0..n, 0..n, 0.0..std::f64::consts::PI);
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |ops| {
        let mut c = Circuit::new(n);
        for (kind, a, b, angle) in ops {
            let b = if a == b { (a + 1) % n } else { b };
            match kind {
                0 => c.h(a),
                1 => c.t(a),
                2 => c.rz(angle, a),
                3 => c.x(a),
                4 => c.cx(a, b),
                5 => c.cz(a, b),
                6 => c.cu1(angle, a, b),
                7 => c.rzz(angle, a, b),
                8 => c.barrier(
                    vec![a, b]
                        .into_iter()
                        .collect::<std::collections::BTreeSet<_>>()
                        .into_iter()
                        .collect(),
                ),
                _ => c.cx(b, a),
            }
        }
        c
    })
}

/// Strategy: a random connected coupling graph over `n` qubits
/// (spanning tree + extra edges).
fn random_connected_graph(n: usize) -> impl Strategy<Value = CouplingGraph> {
    let parents = proptest::collection::vec(0usize..n, n - 1);
    let extras = proptest::collection::vec((0usize..n, 0usize..n), 0..n);
    (parents, extras).prop_map(move |(parents, extras)| {
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (i, p) in parents.iter().enumerate() {
            let child = i + 1;
            edges.push((child, p % child.max(1)));
        }
        for (a, b) in extras {
            if a != b {
                edges.push((a, b));
            }
        }
        CouplingGraph::new(n, &edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn codar_output_is_always_valid(circuit in random_circuit(5, 40)) {
        let device = Device::grid(2, 3);
        let config = CodarConfig {
            initial_mapping: InitialMapping::Identity,
            ..CodarConfig::default()
        };
        let routed = CodarRouter::with_config(&device, config)
            .route(&circuit)
            .expect("5 qubits fit a 6-qubit grid");
        check_coupling(&routed.circuit, &device).expect("coupling respected");
        check_equivalence(&circuit, &routed).expect("semantics preserved");
        // Swap accounting is consistent.
        prop_assert_eq!(
            routed.circuit.count_kind(GateKind::Swap),
            routed.swaps_inserted
        );
        // Non-swap gate count is preserved.
        prop_assert_eq!(
            routed.circuit.len() - routed.swaps_inserted,
            circuit.len()
        );
    }

    #[test]
    fn sabre_output_is_always_valid(circuit in random_circuit(5, 40)) {
        let device = Device::grid(2, 3);
        let routed = SabreRouter::new(&device)
            .route(&circuit)
            .expect("5 qubits fit a 6-qubit grid");
        check_coupling(&routed.circuit, &device).expect("coupling respected");
        check_equivalence(&circuit, &routed).expect("semantics preserved");
    }

    #[test]
    fn codar_handles_random_topologies(
        circuit in random_circuit(6, 25),
        graph in random_connected_graph(6),
    ) {
        let device = Device::from_graph("random", graph);
        let config = CodarConfig {
            initial_mapping: InitialMapping::Identity,
            ..CodarConfig::default()
        };
        let routed = CodarRouter::with_config(&device, config)
            .route(&circuit)
            .expect("connected topology always routes");
        check_coupling(&routed.circuit, &device).expect("coupling respected");
        check_equivalence(&circuit, &routed).expect("semantics preserved");
    }

    #[test]
    fn distance_matrix_is_a_metric(graph in random_connected_graph(8)) {
        let d = DistanceMatrix::new(&graph);
        for a in 0..8usize {
            prop_assert_eq!(d.get(a, a), 0);
            for b in 0..8usize {
                prop_assert_eq!(d.get(a, b), d.get(b, a));
                // Adjacent iff distance 1.
                prop_assert_eq!(graph.are_adjacent(a, b), d.get(a, b) == 1);
                for c in 0..8usize {
                    prop_assert!(d.get(a, c) <= d.get(a, b) + d.get(b, c));
                }
            }
        }
    }

    #[test]
    fn weighted_depth_dominates_lower_bound(circuit in random_circuit(5, 40)) {
        let device = Device::grid(2, 3);
        let tau = device.durations().clone();
        let config = CodarConfig {
            initial_mapping: InitialMapping::Identity,
            ..CodarConfig::default()
        };
        let routed = CodarRouter::with_config(&device, config)
            .route(&circuit)
            .expect("fits");
        let lower = codar_repro::circuit::schedule::busy_time_lower_bound(
            &circuit,
            |g| tau.of(g),
        );
        prop_assert!(routed.weighted_depth >= lower);
        // And the reported depth equals re-scheduling the output.
        let again = codar_repro::circuit::weighted_depth(&routed.circuit, |g| tau.of(g));
        prop_assert_eq!(routed.weighted_depth, again);
    }

    #[test]
    fn qasm_round_trip_of_random_circuits(circuit in random_circuit(4, 30)) {
        // Strip barriers of duplicate qubits etc. already guaranteed by
        // the builder; emit → parse → compare.
        let qasm = codar_repro::circuit::from_qasm::circuit_to_qasm(&circuit)
            .expect("every generated kind is emittable");
        let reparsed = codar_repro::circuit::from_qasm::circuit_from_source(&qasm)
            .expect("emitted QASM parses");
        prop_assert_eq!(circuit.gates(), reparsed.gates());
    }
}
