//! Simulator-verified correctness of the optimization passes: every
//! pass must preserve the circuit's unitary (up to global phase).

use codar_repro::circuit::optimize::{
    cancel_inverse_pairs, fuse_single_qubit_gates, merge_rotations, optimize,
};
use codar_repro::circuit::{Circuit, GateKind};
use codar_repro::sim::exec::run_ideal;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_equivalent(a: &Circuit, b: &Circuit, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prep = Circuit::new(a.num_qubits());
    for q in 0..a.num_qubits() {
        prep.add(
            GateKind::U3,
            vec![q],
            vec![
                rng.gen::<f64>() * 3.0,
                rng.gen::<f64>() * 3.0,
                rng.gen::<f64>() * 3.0,
            ],
        );
    }
    let run = |c: &Circuit| {
        let mut all = prep.clone();
        for g in c.gates() {
            all.push(g.clone());
        }
        run_ideal(&all)
    };
    let f = run(a).fidelity_with(&run(b));
    assert!(
        (f - 1.0).abs() < 1e-9,
        "pass changed semantics: fidelity {f}"
    );
}

fn random_unitary_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        match rng.gen_range(0..12) {
            0 => c.h(rng.gen_range(0..n)),
            1 => c.t(rng.gen_range(0..n)),
            2 => c.tdg(rng.gen_range(0..n)),
            3 => c.s(rng.gen_range(0..n)),
            4 => c.sdg(rng.gen_range(0..n)),
            5 => c.x(rng.gen_range(0..n)),
            6 => c.rz(rng.gen::<f64>() * 6.0 - 3.0, rng.gen_range(0..n)),
            7 => c.rx(rng.gen::<f64>() * 6.0 - 3.0, rng.gen_range(0..n)),
            8 => c.ry(rng.gen::<f64>() * 6.0 - 3.0, rng.gen_range(0..n)),
            _ => {
                let a = rng.gen_range(0..n);
                let b = (a + rng.gen_range(1..n)) % n;
                if rng.gen_bool(0.5) {
                    c.cx(a, b);
                } else {
                    c.cz(a, b);
                }
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn cancel_preserves_unitary(seed in 0u64..5000) {
        let c = random_unitary_circuit(4, 40, seed);
        assert_equivalent(&c, &cancel_inverse_pairs(&c), seed);
    }

    #[test]
    fn merge_preserves_unitary(seed in 0u64..5000) {
        let c = random_unitary_circuit(4, 40, seed);
        assert_equivalent(&c, &merge_rotations(&c), seed);
    }

    #[test]
    fn fuse_preserves_unitary(seed in 0u64..5000) {
        let c = random_unitary_circuit(4, 40, seed);
        assert_equivalent(&c, &fuse_single_qubit_gates(&c), seed);
    }

    #[test]
    fn optimize_preserves_unitary(seed in 0u64..5000) {
        let c = random_unitary_circuit(4, 60, seed);
        let o = optimize(&c);
        prop_assert!(o.len() <= c.len());
        assert_equivalent(&c, &o, seed);
    }
}

#[test]
fn fusion_handles_dense_rotation_ladders() {
    // A long alternating-axis ladder exercises the matrix accumulation
    // order (each new gate multiplies on the left).
    let mut c = Circuit::new(1);
    for k in 0..20 {
        match k % 3 {
            0 => c.rx(0.1 * (k + 1) as f64, 0),
            1 => c.ry(0.2 * (k + 1) as f64, 0),
            _ => c.rz(0.3 * (k + 1) as f64, 0),
        }
    }
    let fused = fuse_single_qubit_gates(&c);
    assert_eq!(fused.len(), 1);
    assert_equivalent(&c, &fused, 77);
}

#[test]
fn optimization_before_routing_helps() {
    // Redundancy-laden circuit: optimization should reduce the routed
    // weighted depth (or at least never increase the input size).
    use codar_repro::arch::Device;
    use codar_repro::router::{CodarConfig, CodarRouter, InitialMapping};
    let mut c = Circuit::new(4);
    for _ in 0..5 {
        c.h(0);
        c.h(0);
        c.cx(0, 3);
        c.cx(0, 3);
        c.rz(0.3, 2);
        c.rz(-0.3, 2);
    }
    c.cx(0, 3);
    let optimized = optimize(&c);
    assert_eq!(optimized.len(), 1);
    let device = Device::linear(4);
    let config = CodarConfig {
        initial_mapping: InitialMapping::Identity,
        ..CodarConfig::default()
    };
    let raw = CodarRouter::with_config(&device, config.clone())
        .route(&c)
        .expect("fits");
    let opt = CodarRouter::with_config(&device, config)
        .route(&optimized)
        .expect("fits");
    assert!(opt.weighted_depth < raw.weighted_depth);
}
