//! The paper's worked examples and headline claims, as executable tests.

use codar_repro::arch::{CouplingGraph, Device};
use codar_repro::circuit::{Circuit, GateKind};
use codar_repro::router::sabre::reverse_traversal_mapping;
use codar_repro::router::{CodarConfig, CodarRouter, InitialMapping, SabreRouter};

fn identity_config() -> CodarConfig {
    CodarConfig {
        initial_mapping: InitialMapping::Identity,
        ..CodarConfig::default()
    }
}

/// Paper Fig. 1: the chosen SWAP avoids the qubit occupied by the
/// contextual `t q[2]` and starts at cycle 0.
#[test]
fn fig1_swap_avoids_busy_qubit() {
    let graph = CouplingGraph::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
    let device = Device::from_graph("fig1", graph);
    let mut program = Circuit::new(4);
    program.t(2);
    program.cx(0, 3);
    let routed = CodarRouter::with_config(&device, identity_config())
        .route(&program)
        .expect("fits");
    let (swap, start) = routed
        .circuit
        .gates()
        .iter()
        .zip(&routed.start_times)
        .find(|(g, _)| g.kind == GateKind::Swap)
        .expect("a SWAP is inserted");
    assert_eq!(*start, 0, "SWAP runs in parallel with the T");
    assert!(!swap.qubits.contains(&2), "SWAP avoids busy Q2");
}

/// Paper Fig. 2: with τ(T)=1 and τ(CX)=2, `SWAP q3,q1` starts at cycle
/// 1, before the CX finishes.
#[test]
fn fig2_swap_starts_after_short_gate() {
    let graph = CouplingGraph::new(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
    let device = Device::from_graph("fig2", graph);
    let mut program = Circuit::new(4);
    program.t(1);
    program.cx(0, 2);
    program.cx(0, 3);
    let routed = CodarRouter::with_config(&device, identity_config())
        .route(&program)
        .expect("fits");
    let (swap, start) = routed
        .circuit
        .gates()
        .iter()
        .zip(&routed.start_times)
        .find(|(g, _)| g.kind == GateKind::Swap)
        .expect("a SWAP is inserted");
    assert_eq!(*start, 1, "SWAP starts the moment the T frees its qubit");
    let mut ends = swap.qubits.clone();
    ends.sort_unstable();
    assert_eq!(ends, vec![1, 3], "the paper picks SWAP q3,q1");
}

/// Paper Sec. IV-E / Fig. 7: on a 2×3 grid with gates
/// `cx q0,q2; t q1; cx q0,q3`, no SWAP launches at cycle 0 (every
/// useful edge is locked or useless), and at cycle 1 the freed q1
/// carries the routing SWAP.
#[test]
fn fig7_walkthrough() {
    // 2x3 grid, numbering:  0 1 2
    //                       3 4 5
    let device = Device::grid(2, 3);
    let mut program = Circuit::new(6);
    program.cx(0, 2); // not adjacent on the grid? 0-1-2: distance 2...
                      // The paper's layout has q0 adjacent to q2 via the figure's edges;
                      // on our row-major grid use (0,1) instead to keep the walkthrough:
                      // cx q0,q1 (direct), t q2, cx q0,q5 (distance 2, needs a SWAP).
    let mut program2 = Circuit::new(6);
    program2.cx(0, 1);
    program2.t(2);
    program2.cx(0, 5);
    let _ = program;
    let routed = CodarRouter::with_config(&device, identity_config())
        .route(&program2)
        .expect("fits");
    // The direct CX and the T both start at 0.
    assert_eq!(routed.start_times[0], 0);
    assert_eq!(routed.start_times[1], 0);
    // A SWAP for cx(0,5) exists and cannot touch q0/q1 before cycle 2.
    let (swap, start) = routed
        .circuit
        .gates()
        .iter()
        .zip(&routed.start_times)
        .find(|(g, _)| g.kind == GateKind::Swap)
        .expect("a SWAP is inserted");
    if swap.qubits.contains(&0) || swap.qubits.contains(&1) {
        assert!(*start >= 2, "edges locked by the CX stay blocked until 2");
    }
    codar_repro::router::verify::check_equivalence(&program2, &routed).expect("equivalent");
}

/// The headline claim: averaged over a benchmark sample, CODAR's
/// weighted depth beats SABRE's (the paper reports 1.21–1.26x over the
/// full suite; we assert > 1.05x on a quick sample to keep tests fast).
#[test]
fn codar_beats_sabre_on_average() {
    let device = Device::ibm_q20_tokyo();
    let suite = codar_repro::benchmarks::full_suite();
    let sample = [
        "qft_10",
        "ising_10",
        "random_10",
        "qft_12",
        "ising_13",
        "random_12",
    ];
    let mut ratio_sum = 0.0;
    for name in sample {
        let entry = suite.iter().find(|e| e.name == name).expect("in suite");
        let initial = reverse_traversal_mapping(&entry.circuit, &device, 0);
        let codar = CodarRouter::new(&device)
            .route_with_mapping(&entry.circuit, initial.clone())
            .expect("fits");
        let sabre = SabreRouter::new(&device)
            .route_with_mapping(&entry.circuit, initial)
            .expect("fits");
        ratio_sum += sabre.weighted_depth as f64 / codar.weighted_depth as f64;
    }
    let avg = ratio_sum / sample.len() as f64;
    assert!(avg > 1.05, "average speedup only {avg:.3}");
}

/// Sec. V-B: CODAR may insert *more* SWAPs than SABRE while still
/// producing a shorter schedule — check the totals over a sample.
#[test]
fn codar_trades_swaps_for_parallelism() {
    let device = Device::enfield_6x6();
    let suite = codar_repro::benchmarks::full_suite();
    let mut codar_swaps = 0usize;
    let mut sabre_swaps = 0usize;
    let mut codar_depth = 0u64;
    let mut sabre_depth = 0u64;
    for name in ["qft_10", "ising_10", "random_10"] {
        let entry = suite.iter().find(|e| e.name == name).expect("in suite");
        let initial = reverse_traversal_mapping(&entry.circuit, &device, 0);
        let codar = CodarRouter::new(&device)
            .route_with_mapping(&entry.circuit, initial.clone())
            .expect("fits");
        let sabre = SabreRouter::new(&device)
            .route_with_mapping(&entry.circuit, initial)
            .expect("fits");
        codar_swaps += codar.swaps_inserted;
        sabre_swaps += sabre.swaps_inserted;
        codar_depth += codar.weighted_depth;
        sabre_depth += sabre.weighted_depth;
    }
    assert!(
        codar_swaps >= sabre_swaps,
        "expected CODAR to spend at least as many SWAPs ({codar_swaps} vs {sabre_swaps})"
    );
    assert!(
        codar_depth < sabre_depth,
        "…but finish earlier ({codar_depth} vs {sabre_depth})"
    );
}

/// The mechanism behind the speedup: CODAR packs the same work into
/// fewer cycles, i.e. achieves higher average parallelism.
#[test]
fn codar_extracts_more_parallelism() {
    use codar_repro::circuit::stats::ParallelismProfile;
    let device = Device::ibm_q20_tokyo();
    let suite = codar_repro::benchmarks::full_suite();
    let tau = device.durations().clone();
    let mut codar_avg = 0.0;
    let mut sabre_avg = 0.0;
    for name in ["qft_10", "ising_10", "random_10"] {
        let entry = suite.iter().find(|e| e.name == name).expect("in suite");
        let initial = reverse_traversal_mapping(&entry.circuit, &device, 0);
        let codar = CodarRouter::new(&device)
            .route_with_mapping(&entry.circuit, initial.clone())
            .expect("fits");
        let sabre = SabreRouter::new(&device)
            .route_with_mapping(&entry.circuit, initial)
            .expect("fits");
        codar_avg += ParallelismProfile::of(&codar.circuit, |g| tau.of(g)).average_busy;
        sabre_avg += ParallelismProfile::of(&sabre.circuit, |g| tau.of(g)).average_busy;
    }
    assert!(
        codar_avg > sabre_avg,
        "codar parallelism {codar_avg:.2} vs sabre {sabre_avg:.2}"
    );
}

/// Ablations must not *improve* CODAR: full CODAR is at least as good
/// as the duration-unaware variant on duration-sensitive workloads,
/// averaged over a sample.
#[test]
fn duration_awareness_pays_off() {
    let device = Device::ibm_q20_tokyo();
    let suite = codar_repro::benchmarks::full_suite();
    let mut full = 0u64;
    let mut unaware = 0u64;
    for name in ["qft_10", "qft_12", "ising_10", "random_10", "ising_13"] {
        let entry = suite.iter().find(|e| e.name == name).expect("in suite");
        let initial = reverse_traversal_mapping(&entry.circuit, &device, 0);
        let a = CodarRouter::with_config(&device, CodarConfig::default())
            .route_with_mapping(&entry.circuit, initial.clone())
            .expect("fits");
        let b = CodarRouter::with_config(
            &device,
            CodarConfig {
                enable_duration_awareness: false,
                ..CodarConfig::default()
            },
        )
        .route_with_mapping(&entry.circuit, initial)
        .expect("fits");
        full += a.weighted_depth;
        unaware += b.weighted_depth;
    }
    assert!(
        full <= unaware,
        "duration awareness should not hurt: {full} vs {unaware}"
    );
}
